"""The unstructured hexahedral mesh data structure.

The mesh stores cells as lists of 8 vertex indices (lexicographic corner
ordering, x fastest) together with an explicit face-neighbour table.  Nothing
in the transport solver ever relies on implicit structured indexing; all
neighbour resolution goes through :attr:`UnstructuredHexMesh.face_neighbors`,
which is what makes the sweep genuinely "unstructured" even when the mesh was
derived from a regular grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["UnstructuredHexMesh", "BOUNDARY"]

#: Sentinel used in the neighbour table for boundary faces.
BOUNDARY = -1


@dataclass
class UnstructuredHexMesh:
    """An unstructured mesh of hexahedral cells.

    Attributes
    ----------
    vertices:
        ``(V, 3)`` physical coordinates of the mesh vertices.
    cells:
        ``(E, 8)`` vertex indices of each cell, lexicographic corner order
        (x fastest) matching :func:`repro.fem.element.corner_reference_coords`.
    face_neighbors:
        ``(E, 6)`` neighbouring cell index across each face, or
        :data:`BOUNDARY` for a domain-boundary face.  Face numbering is
        0:-x, 1:+x, 2:-y, 3:+y, 4:-z, 5:+z in the *reference* orientation of
        the cell (which the builder keeps aligned with the global axes).
    structured_index:
        Optional ``(E, 3)`` (i, j, k) provenance of each cell when the mesh
        was derived from a structured grid; used only by the KBA partitioner
        and by the finite-difference baseline for comparisons, never by the
        unstructured sweep itself.
    metadata:
        Free-form provenance information (grid shape, extents, twist).
    """

    vertices: np.ndarray
    cells: np.ndarray
    face_neighbors: np.ndarray
    structured_index: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=float)
        self.cells = np.asarray(self.cells, dtype=np.int64)
        self.face_neighbors = np.asarray(self.face_neighbors, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError(f"vertices must have shape (V, 3), got {self.vertices.shape}")
        if self.cells.ndim != 2 or self.cells.shape[1] != 8:
            raise ValueError(f"cells must have shape (E, 8), got {self.cells.shape}")
        if self.face_neighbors.shape != (self.cells.shape[0], 6):
            raise ValueError(
                f"face_neighbors must have shape (E, 6), got {self.face_neighbors.shape}"
            )
        if self.cells.size and (self.cells.min() < 0 or self.cells.max() >= len(self.vertices)):
            raise ValueError("cell vertex indices out of range")
        if self.structured_index is not None:
            self.structured_index = np.asarray(self.structured_index, dtype=np.int64)
            if self.structured_index.shape != (self.cells.shape[0], 3):
                raise ValueError("structured_index must have shape (E, 3)")

    # ------------------------------------------------------------------ sizes
    @property
    def num_cells(self) -> int:
        return self.cells.shape[0]

    @property
    def num_vertices(self) -> int:
        return self.vertices.shape[0]

    # ------------------------------------------------------------- geometry
    def cell_vertices(self, cells: np.ndarray | None = None) -> np.ndarray:
        """Corner coordinates of the requested cells, shape ``(E, 8, 3)``."""
        idx = self.cells if cells is None else self.cells[np.asarray(cells, dtype=np.int64)]
        return self.vertices[idx]

    def cell_centroids(self) -> np.ndarray:
        """Average of the 8 corner positions of every cell, ``(E, 3)``."""
        return self.cell_vertices().mean(axis=1)

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box ``(min_corner, max_corner)`` of the mesh."""
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    # ---------------------------------------------------------- connectivity
    def is_boundary_face(self, cell: int, face: int) -> bool:
        return self.face_neighbors[cell, face] == BOUNDARY

    def boundary_faces(self) -> np.ndarray:
        """Array of ``(cell, face)`` pairs lying on the domain boundary."""
        cells, faces = np.nonzero(self.face_neighbors == BOUNDARY)
        return np.stack([cells, faces], axis=1)

    def interior_faces(self) -> np.ndarray:
        """Array of ``(cell, face, neighbor)`` triples for interior faces.

        Each interior face appears twice, once from each side, which is the
        form the DG upwind assembly consumes.
        """
        cells, faces = np.nonzero(self.face_neighbors != BOUNDARY)
        nbrs = self.face_neighbors[cells, faces]
        return np.stack([cells, faces, nbrs], axis=1)

    def neighbor_counts(self) -> np.ndarray:
        """Number of interior faces of each cell (between 0 and 6)."""
        return np.count_nonzero(self.face_neighbors != BOUNDARY, axis=1)

    # ------------------------------------------------------------- utilities
    def extract_cells(self, cell_ids: np.ndarray) -> "UnstructuredHexMesh":
        """Build a sub-mesh restricted to ``cell_ids`` (local re-indexing).

        Faces whose neighbour is outside the selection become boundary faces
        of the sub-mesh; the mapping back to global ids is recorded in the
        returned mesh's ``metadata['global_cell_ids']``.
        """
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        global_to_local = -np.ones(self.num_cells, dtype=np.int64)
        global_to_local[cell_ids] = np.arange(cell_ids.shape[0])

        used_vertices = np.unique(self.cells[cell_ids].reshape(-1))
        vert_map = -np.ones(self.num_vertices, dtype=np.int64)
        vert_map[used_vertices] = np.arange(used_vertices.shape[0])

        new_cells = vert_map[self.cells[cell_ids]]
        new_neighbors = self.face_neighbors[cell_ids].copy()
        interior = new_neighbors != BOUNDARY
        mapped = np.where(
            interior, global_to_local[np.where(interior, new_neighbors, 0)], BOUNDARY
        )
        new_neighbors = np.where(interior, mapped, BOUNDARY)

        structured = None
        if self.structured_index is not None:
            structured = self.structured_index[cell_ids]

        metadata = dict(self.metadata)
        metadata["global_cell_ids"] = cell_ids.copy()
        return UnstructuredHexMesh(
            vertices=self.vertices[used_vertices],
            cells=new_cells,
            face_neighbors=new_neighbors,
            structured_index=structured,
            metadata=metadata,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"UnstructuredHexMesh(num_cells={self.num_cells}, "
            f"num_vertices={self.num_vertices})"
        )
