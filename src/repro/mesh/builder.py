"""Construction of the UnSNAP mesh from SNAP-style structured parameters.

The paper forms its unstructured mesh "by first forming the original SNAP
mesh but storing it in an unstructured format, maintaining appropriate lists
of cell-to-cell dependencies in a new mesh data structure", and then adds an
input option which "allows the mesh to be twisted slightly along a single
axis, and therefore each cell is no longer a perfect cube".

:func:`build_snap_mesh` reproduces exactly this pipeline and returns an
:class:`~repro.mesh.hexmesh.UnstructuredHexMesh` whose connectivity is stored
explicitly, never inferred from (i, j, k) arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hexmesh import BOUNDARY, UnstructuredHexMesh

__all__ = ["StructuredGridSpec", "build_snap_mesh", "twist_vertices"]

_AXES = {"x": 0, "y": 1, "z": 2}


@dataclass(frozen=True)
class StructuredGridSpec:
    """Parameters of the underlying SNAP structured grid.

    Attributes
    ----------
    nx, ny, nz:
        Number of cells along each axis.
    lx, ly, lz:
        Physical extents of the domain (the domain is ``[0, lx] x [0, ly] x
        [0, lz]`` before twisting).
    """

    nx: int
    ny: int
    nz: int
    lx: float = 1.0
    ly: float = 1.0
    lz: float = 1.0

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("grid must have at least one cell per axis")
        if min(self.lx, self.ly, self.lz) <= 0.0:
            raise ValueError("domain extents must be positive")

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def num_vertices(self) -> int:
        return (self.nx + 1) * (self.ny + 1) * (self.nz + 1)

    @property
    def cell_sizes(self) -> tuple[float, float, float]:
        return self.lx / self.nx, self.ly / self.ny, self.lz / self.nz


def twist_vertices(
    vertices: np.ndarray,
    spec: StructuredGridSpec,
    max_twist: float,
    axis: str = "z",
) -> np.ndarray:
    """Apply the UnSNAP axis twist to a vertex array.

    Each cross-section perpendicular to ``axis`` is rotated about the domain
    centreline by an angle that grows linearly from 0 at the bottom of the
    domain to ``max_twist`` radians at the top ("mesh twisting of up to 0.001
    radians" in the paper's experiments).  The transformation is exactly
    rigid per cross-section, so cell volumes change only through the shear
    between adjacent layers; for the small angles used by the paper the mesh
    stays valid (positive Jacobians), which is verified by the element
    factor computation.

    Parameters
    ----------
    vertices:
        ``(V, 3)`` vertex coordinates.
    spec:
        The structured grid specification (used for domain extents).
    max_twist:
        Maximum rotation angle in radians; 0 returns a copy of the input.
    axis:
        The twist axis, one of ``"x"``, ``"y"``, ``"z"``.
    """
    if axis not in _AXES:
        raise ValueError(f"twist axis must be one of 'x', 'y', 'z', got {axis!r}")
    vertices = np.asarray(vertices, dtype=float).copy()
    if max_twist == 0.0:
        return vertices

    a = _AXES[axis]
    others = [d for d in range(3) if d != a]
    extents = np.array([spec.lx, spec.ly, spec.lz])
    centre = extents / 2.0

    frac = vertices[:, a] / extents[a]
    angle = max_twist * frac
    c, s = np.cos(angle), np.sin(angle)
    u = vertices[:, others[0]] - centre[others[0]]
    v = vertices[:, others[1]] - centre[others[1]]
    vertices[:, others[0]] = centre[others[0]] + c * u - s * v
    vertices[:, others[1]] = centre[others[1]] + s * u + c * v
    return vertices


def build_snap_mesh(
    spec: StructuredGridSpec,
    max_twist: float = 0.0,
    twist_axis: str = "z",
) -> UnstructuredHexMesh:
    """Build the UnSNAP unstructured mesh from a SNAP structured grid.

    The returned mesh carries explicit face-neighbour lists and the structured
    (i, j, k) provenance of every cell (used only by the KBA partitioner and
    by baselines), plus metadata describing the grid and the applied twist.
    """
    nx, ny, nz = spec.nx, spec.ny, spec.nz
    dx, dy, dz = spec.cell_sizes

    # ----------------------------------------------------------------- vertices
    xs = np.arange(nx + 1) * dx
    ys = np.arange(ny + 1) * dy
    zs = np.arange(nz + 1) * dz
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    # Vertex id = i + (nx+1)*j + (nx+1)*(ny+1)*k  (x fastest).
    vertices = np.stack(
        [gx.reshape(-1, order="F"), gy.reshape(-1, order="F"), gz.reshape(-1, order="F")],
        axis=-1,
    )
    vertices = twist_vertices(vertices, spec, max_twist, twist_axis)

    def vid(i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        return i + (nx + 1) * (j + (ny + 1) * k)

    # -------------------------------------------------------------------- cells
    ci, cj, ck = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    ci = ci.reshape(-1, order="F")
    cj = cj.reshape(-1, order="F")
    ck = ck.reshape(-1, order="F")
    # Lexicographic corner ordering (x fastest) to match the reference element.
    cells = np.stack(
        [
            vid(ci, cj, ck),
            vid(ci + 1, cj, ck),
            vid(ci, cj + 1, ck),
            vid(ci + 1, cj + 1, ck),
            vid(ci, cj, ck + 1),
            vid(ci + 1, cj, ck + 1),
            vid(ci, cj + 1, ck + 1),
            vid(ci + 1, cj + 1, ck + 1),
        ],
        axis=-1,
    )

    def cid(i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        return i + nx * (j + ny * k)

    # -------------------------------------------------------------- connectivity
    num_cells = spec.num_cells
    neighbors = np.full((num_cells, 6), BOUNDARY, dtype=np.int64)
    me = cid(ci, cj, ck)
    # -x / +x
    mask = ci > 0
    neighbors[me[mask], 0] = cid(ci[mask] - 1, cj[mask], ck[mask])
    mask = ci < nx - 1
    neighbors[me[mask], 1] = cid(ci[mask] + 1, cj[mask], ck[mask])
    # -y / +y
    mask = cj > 0
    neighbors[me[mask], 2] = cid(ci[mask], cj[mask] - 1, ck[mask])
    mask = cj < ny - 1
    neighbors[me[mask], 3] = cid(ci[mask], cj[mask] + 1, ck[mask])
    # -z / +z
    mask = ck > 0
    neighbors[me[mask], 4] = cid(ci[mask], cj[mask], ck[mask] - 1)
    mask = ck < nz - 1
    neighbors[me[mask], 5] = cid(ci[mask], cj[mask], ck[mask] + 1)

    structured_index = np.stack([ci, cj, ck], axis=-1)
    metadata = {
        "grid_shape": (nx, ny, nz),
        "extents": (spec.lx, spec.ly, spec.lz),
        "max_twist": float(max_twist),
        "twist_axis": twist_axis,
        "cell_sizes": (dx, dy, dz),
    }
    return UnstructuredHexMesh(
        vertices=vertices,
        cells=cells,
        face_neighbors=neighbors,
        structured_index=structured_index,
        metadata=metadata,
    )
