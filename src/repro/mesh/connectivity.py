"""Generic connectivity construction and validation for hexahedral meshes.

The builder derives neighbour lists directly from the structured provenance,
but UnSNAP treats the mesh as genuinely unstructured: every neighbour lookup
in the solver goes through the explicit table.  This module provides an
independent way to (re)construct that table purely from shared face vertices,
which is used both for externally supplied meshes and as a cross-check of the
builder in the test suite.
"""

from __future__ import annotations

import numpy as np

from .hexmesh import BOUNDARY, UnstructuredHexMesh

__all__ = [
    "FACE_CORNER_INDICES",
    "build_connectivity_from_faces",
    "validate_connectivity",
    "face_vertex_ids",
]

#: Local corner indices (into the 8-corner lexicographic ordering) of each of
#: the 6 faces.  Face numbering: 0:-x, 1:+x, 2:-y, 3:+y, 4:-z, 5:+z.
FACE_CORNER_INDICES = np.array(
    [
        [0, 2, 4, 6],  # -x
        [1, 3, 5, 7],  # +x
        [0, 1, 4, 5],  # -y
        [2, 3, 6, 7],  # +y
        [0, 1, 2, 3],  # -z
        [4, 5, 6, 7],  # +z
    ],
    dtype=np.int64,
)


def face_vertex_ids(cells: np.ndarray) -> np.ndarray:
    """Vertex ids of every face of every cell, shape ``(E, 6, 4)``."""
    cells = np.asarray(cells, dtype=np.int64)
    return cells[:, FACE_CORNER_INDICES]


def build_connectivity_from_faces(cells: np.ndarray) -> np.ndarray:
    """Build the ``(E, 6)`` neighbour table from shared face vertex sets.

    Two faces are neighbours when they reference exactly the same four mesh
    vertices (in any order); this is the conforming-mesh assumption of
    UnSNAP, where "each face has a single neighbouring element".

    Raises
    ------
    ValueError
        If any face vertex set is shared by more than two cells (a
        non-manifold mesh).
    """
    cells = np.asarray(cells, dtype=np.int64)
    num_cells = cells.shape[0]
    faces = face_vertex_ids(cells)  # (E, 6, 4)
    keys = np.sort(faces.reshape(-1, 4), axis=1)

    neighbors = np.full((num_cells, 6), BOUNDARY, dtype=np.int64)
    owners: dict[tuple[int, int, int, int], tuple[int, int]] = {}
    matched: set[tuple[int, int, int, int]] = set()
    for flat_index, key in enumerate(map(tuple, keys.tolist())):
        cell, face = divmod(flat_index, 6)
        if key in matched:
            raise ValueError(
                f"face {key} is shared by more than two cells; mesh is non-manifold"
            )
        if key in owners:
            other_cell, other_face = owners.pop(key)
            neighbors[cell, face] = other_cell
            neighbors[other_cell, other_face] = cell
            matched.add(key)
        else:
            owners[key] = (cell, face)
    return neighbors


def validate_connectivity(mesh: UnstructuredHexMesh) -> list[str]:
    """Check structural invariants of a mesh's neighbour table.

    Returns a list of human-readable problem descriptions; an empty list
    means the connectivity is consistent.  The checks are:

    * neighbour indices are in range;
    * no cell is its own neighbour;
    * symmetry -- if B is A's neighbour across some face, then A is B's
      neighbour across the opposite face;
    * the neighbour faces reference the same four vertices.
    """
    problems: list[str] = []
    nbrs = mesh.face_neighbors
    num_cells = mesh.num_cells
    faces = face_vertex_ids(mesh.cells)

    out_of_range = (nbrs != BOUNDARY) & ((nbrs < 0) | (nbrs >= num_cells))
    for cell, face in zip(*np.nonzero(out_of_range)):
        problems.append(
            f"cell {cell} face {face}: neighbour index {nbrs[cell, face]} out of range"
        )

    for cell, face in zip(*np.nonzero(nbrs != BOUNDARY)):
        other = nbrs[cell, face]
        if other < 0 or other >= num_cells:
            continue  # already reported as out of range above
        if other == cell:
            problems.append(f"cell {cell} face {face}: cell is its own neighbour")
            continue
        opposite = face ^ 1
        if nbrs[other, opposite] != cell:
            problems.append(
                f"cell {cell} face {face}: neighbour {other} does not point back "
                f"(its face {opposite} points to {nbrs[other, opposite]})"
            )
            continue
        mine = set(faces[cell, face].tolist())
        theirs = set(faces[other, opposite].tolist())
        if mine != theirs:
            problems.append(
                f"cell {cell} face {face} and cell {other} face {opposite} "
                "do not share the same four vertices"
            )
    return problems
