"""Command-line driver (the ``unsnap`` entry point).

Sub-commands
------------
``run``
    Solve a problem defined by an input deck or by command-line overrides
    (single rank or block-Jacobi multi-rank) and print a solve summary.
``table1``
    Print Table I (local matrix size and footprint per element order).
``table2``
    Run the scaled-down Table II solver comparison and print it.
``fig3`` / ``fig4``
    Print the model-predicted thread-scaling series of Figures 3 and 4.
``balance``
    Solve and print the particle-balance diagnostics.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.figures import PAPER_THREAD_COUNTS, figure3_series, figure4_series
from .analysis.reporting import format_scaling_series, format_table
from .analysis.tables import table1_matrix_sizes, table2_solver_comparison
from .config import ProblemSpec
from .core.solver import TransportSolver
from .input_deck import parse_input_deck
from .parallel.block_jacobi import BlockJacobiDriver

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="unsnap",
        description="UnSNAP reproduction: DG discrete ordinates transport on "
        "unstructured hexahedral meshes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="solve a transport problem")
    run.add_argument("--deck", type=str, default=None, help="path to a SNAP-style input deck")
    run.add_argument("--nx", type=int, default=6)
    run.add_argument("--ny", type=int, default=6)
    run.add_argument("--nz", type=int, default=6)
    run.add_argument("--order", type=int, default=1)
    run.add_argument("--nang", type=int, default=2, help="angles per octant")
    run.add_argument("--groups", type=int, default=4)
    run.add_argument("--twist", type=float, default=0.001)
    run.add_argument("--inners", type=int, default=5)
    run.add_argument("--outers", type=int, default=1)
    run.add_argument("--solver", type=str, default="ge", choices=("ge", "lapack"))
    run.add_argument("--npex", type=int, default=1)
    run.add_argument("--npey", type=int, default=1)

    sub.add_parser("table1", help="print Table I (matrix sizes per order)")

    table2 = sub.add_parser("table2", help="run the Table II solver comparison (scaled down)")
    table2.add_argument("--max-order", type=int, default=3)

    fig3 = sub.add_parser("fig3", help="print the Figure 3 thread-scaling series (linear)")
    fig4 = sub.add_parser("fig4", help="print the Figure 4 thread-scaling series (cubic)")
    for p in (fig3, fig4):
        p.add_argument("--threads", type=int, nargs="+", default=list(PAPER_THREAD_COUNTS))

    balance = sub.add_parser("balance", help="solve and print particle-balance diagnostics")
    balance.add_argument("--n", type=int, default=4)
    balance.add_argument("--groups", type=int, default=2)
    return parser


def _spec_from_args(args: argparse.Namespace) -> ProblemSpec:
    if args.deck:
        return parse_input_deck(args.deck)
    return ProblemSpec(
        nx=args.nx, ny=args.ny, nz=args.nz,
        order=args.order,
        angles_per_octant=args.nang,
        num_groups=args.groups,
        max_twist=args.twist,
        num_inners=args.inners,
        num_outers=args.outers,
        solver=args.solver,
        npex=args.npex,
        npey=args.npey,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    if spec.npex * spec.npey > 1:
        result = BlockJacobiDriver(spec).solve()
        rows = [
            ("ranks", spec.npex * spec.npey),
            ("cells", result.scalar_flux.shape[0]),
            ("inner iterations", result.total_inners),
            ("assemble seconds", round(result.timings.assembly_seconds, 4)),
            ("solve seconds", round(result.timings.solve_seconds, 4)),
            ("solve fraction", round(result.timings.solve_fraction, 3)),
            ("balance residual", f"{result.balance.relative_residual():.3e}"),
            ("halo messages", result.messages),
            ("mean scalar flux", f"{result.scalar_flux.mean():.6f}"),
        ]
    else:
        res = TransportSolver(spec).solve()
        summary = res.summary()
        rows = [
            ("cells", summary["cells"]),
            ("groups", summary["groups"]),
            ("nodes per element", summary["nodes_per_element"]),
            ("inner iterations", summary["total_inners"]),
            ("assemble seconds", round(summary["assembly_seconds"], 4)),
            ("solve seconds", round(summary["solve_seconds"], 4)),
            ("solve fraction", round(summary["solve_fraction"], 3)),
            ("balance residual", f"{summary['balance_residual']:.3e}"),
            ("mean scalar flux", f"{summary['mean_flux']:.6f}"),
        ]
    print(format_table(("quantity", "value"), rows, title="UnSNAP solve summary"))
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    rows = [r.as_tuple() for r in table1_matrix_sizes()]
    print(
        format_table(
            ("order", "matrix size", "FP64 footprint (kB)"),
            rows,
            title="Table I: size of local matrix for different finite element orders",
        )
    )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    orders = tuple(range(1, args.max_order + 1))
    rows = [r.as_tuple() for r in table2_solver_comparison(orders=orders)]
    print(
        format_table(
            ("order", "solver", "assemble/solve (s)", "% in solve", "systems"),
            rows,
            title="Table II (scaled down): assemble/solve time per order and solver",
        )
    )
    return 0


def _cmd_fig(args: argparse.Namespace, order: int) -> int:
    series = figure3_series(tuple(args.threads)) if order == 1 else figure4_series(tuple(args.threads))
    title = (
        "Figure 3: thread scaling of the parallel sweep (linear elements, model)"
        if order == 1
        else "Figure 4: thread scaling of the parallel sweep (cubic elements, model)"
    )
    print(format_scaling_series(series.thread_counts, series.series, title=title))
    print(f"fastest scheme at {series.thread_counts[-1]} threads: {series.fastest_at(series.thread_counts[-1])}")
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    spec = ProblemSpec(
        nx=args.n, ny=args.n, nz=args.n,
        order=1,
        angles_per_octant=2,
        num_groups=args.groups,
        num_inners=50, num_outers=20,
        inner_tolerance=1e-8, outer_tolerance=1e-8,
    )
    result = TransportSolver(spec).solve()
    b = result.balance
    rows = [
        (g, f"{b.emission[g]:.5f}", f"{b.absorption[g]:.5f}", f"{b.leakage[g]:.5f}", f"{b.residual[g]:+.2e}")
        for g in range(len(b.emission))
    ]
    print(
        format_table(
            ("group", "emission", "absorption", "leakage", "residual"),
            rows,
            title="Particle balance (converged solve)",
        )
    )
    print(f"total relative residual: {b.relative_residual():.3e}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``unsnap`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "table2":
        return _cmd_table2(args)
    if args.command == "fig3":
        return _cmd_fig(args, order=1)
    if args.command == "fig4":
        return _cmd_fig(args, order=3)
    if args.command == "balance":
        return _cmd_balance(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
