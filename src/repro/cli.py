"""Command-line driver (the ``unsnap`` entry point).

Sub-commands
------------
``run``
    Solve a problem defined by an input deck or by command-line overrides
    (single rank or block-Jacobi multi-rank, any registered sweep engine)
    through the :func:`repro.run` facade and print a solve summary -- or the
    full machine-readable ``RunResult`` with ``--json``.  ``--driver`` picks
    the outer loop (``fixed_source`` / ``k_eigenvalue`` / ``time_dependent``,
    see ``unsnap drivers``); ``--dt``/``--steps``/``--k-tol`` configure it.
``study``
    Execute a declarative multi-run study through :func:`repro.run_study`:
    the grid comes from a deck's ``[study]`` axis section and/or repeated
    ``--axis key=v1,v2`` options, the base problem from the deck or the
    usual problem flags.  ``--backend`` picks the execution backend
    (serial/thread/process/distributed), ``--store`` makes the study
    resumable; ``--spool``/``--lease`` configure the distributed backend's
    shared spool directory and work-stealing lease.
``worker``
    Serve a distributed-campaign spool directory: claim jobs, execute
    them, persist results in the spool's shared store and mark them done
    -- until the coordinator's STOP marker (or ``--max-jobs`` /
    ``--idle-exit``).  Start any number, on any host that mounts the
    spool (see :mod:`repro.campaign.distributed`).
``engines``
    List the registered sweep engines (with their aliases).
``solvers``
    List the registered local dense solvers (with their aliases).
``backends``
    List the registered study-execution backends (with their aliases).
``drivers``
    List the registered outer-loop drivers (with their aliases).
``table1``
    Print Table I (local matrix size and footprint per element order).
``table2``
    Run the scaled-down Table II solver comparison and print it.
``fig3`` / ``fig4``
    Print the model-predicted thread-scaling series of Figures 3 and 4.
``balance``
    Solve and print the particle-balance diagnostics.
``verify``
    Run the verification subsystem (:mod:`repro.verify`): manufactured-
    solution convergence orders, the cross-engine conformance matrix and
    the golden regression store.  ``--suite`` selects a subset,
    ``--update-golden`` re-blesses the goldens, ``--json`` emits the full
    machine-readable report (the CI ``verify`` job archives it).
``bench``
    Run the benchmark subsystem (:mod:`repro.bench`): registered benchmark
    cases selected by ``--filter`` (name, alias or tag), shrunk to the CI
    budget with ``--smoke``, written as an ``unsnap-bench-v1`` report with
    ``--json PATH``, compared against a baseline report with ``--compare``
    (``--fail-on-regress`` turns a confirmed slowdown into exit code 1) and
    overlaid on the perfmodel roofline with ``--against-model``.
``store``
    Result-store maintenance: ``store gc DIR`` compacts a campaign
    :class:`~repro.campaign.ResultStore` (``--keep-latest N`` drops old
    records, ``--max-age DAYS`` drops stale ones, ``--max-bytes N`` drops
    the oldest until the store fits the byte budget, ``--drop-flux``
    strips the flux payloads); ``store merge
    DEST SOURCE...`` folds independently-populated stores into one (the
    sharded-campaign merge point -- a study re-run against the merged
    store executes zero new runs).  Golden stores are refused by both.
``serve``
    Run the transport service (:mod:`repro.service`): a job-queue daemon
    plus HTTP gateway accepting deck/spec submissions on ``POST /jobs``,
    deduplicating identical work through the attached ``--store`` and
    streaming telemetry progress.  ``--backend`` picks the execution
    backend, ``--jobs`` the worker count; ``--max-queue`` and
    ``--max-body-bytes`` bound the intake (429 / 413); ``--trace PATH``
    attaches a span exporter so every job's queue wait and execution land
    in an ``unsnap-trace-v1`` file (and ``GET /metrics`` / ``GET
    /dashboard`` expose the live counters).  Stops cleanly on SIGINT
    (Ctrl-C).
``spool``
    Spool-directory observability (:mod:`repro.campaign.distributed`):
    ``spool status DIR`` prints pending/claimed/done counts, per-worker
    heartbeat liveness and the quarantine with its ``.reason`` excerpts
    -- ``--json`` for the raw dict, ``--html`` for a static dashboard
    page.
``trace``
    Trace tooling (:mod:`repro.obs`): ``trace summary FILE_OR_DIR...``
    joins ``unsnap-trace-v1`` span files and prints per-trace makespan,
    queue-wait attribution, per-phase/per-worker breakdowns and the
    critical path; ``trace tree`` renders the span forest.  ``--trace-id``
    selects one trace, ``--json`` emits the machine-readable summaries.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis.figures import PAPER_THREAD_COUNTS, figure3_series, figure4_series
from .analysis.reporting import (
    format_scaling_series,
    format_table,
    format_verification_report,
)
from .analysis.tables import table1_matrix_sizes, table2_solver_comparison
from .campaign import ResultStore, Study, backend_listing, get_backend, run_study
from .config import ProblemSpec
from .drivers import get_driver
from .engines import engine_listing, get_engine
from .input_deck import loads_study_parts, parse_axis_option, parse_input_deck
from .runner import run
from .solvers import get_solver, solver_listing

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="unsnap",
        description="UnSNAP reproduction: DG discrete ordinates transport on "
        "unstructured hexahedral meshes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="solve a transport problem")
    _add_problem_flags(run_cmd)
    run_cmd.add_argument(
        "--json", action="store_true",
        help="print the RunResult.to_dict() summary as JSON instead of a table",
    )

    study_cmd = sub.add_parser(
        "study", help="execute a declarative multi-run study (repro.run_study)"
    )
    _add_problem_flags(study_cmd)
    study_cmd.add_argument(
        "--axis", action="append", default=None, metavar="KEY=V1,V2,...",
        help="add a study axis (deck key or spec field, e.g. engine=vectorized,"
        "prefactorized); repeatable, overrides a deck [study] axis of the "
        "same name",
    )
    study_cmd.add_argument(
        "--backend", type=str, default="serial",
        help="execution backend name or alias: serial | thread | process | "
        "distributed (see 'unsnap backends')",
    )
    study_cmd.add_argument(
        "--jobs", type=int, default=None,
        help="worker cap for concurrent backends (default: executor default)",
    )
    study_cmd.add_argument(
        "--store", type=str, default=None, metavar="DIR",
        help="result-store directory: completed runs are skipped on re-invocation "
        "and fresh runs persisted (one JSON per run)",
    )
    study_cmd.add_argument(
        "--spool", type=str, default=None, metavar="DIR",
        help="distributed backend only: shared spool directory (workers on any "
        "host mounting it pick up the runs; default: a private temporary "
        "spool with locally spawned workers)",
    )
    study_cmd.add_argument(
        "--lease", type=float, default=None, metavar="SECONDS",
        help="distributed backend only: work-stealing lease -- a claim whose "
        "worker heartbeat stalls this long is re-queued (default 15)",
    )
    study_cmd.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="write an unsnap-trace-v1 span file: the study becomes one "
        "trace, and (distributed backend) spool workers append their spans "
        "to the spool's trace/ directory under the same trace id",
    )
    study_cmd.add_argument(
        "--json", action="store_true",
        help="print the per-run records as JSON instead of a table",
    )

    sub.add_parser("engines", help="list registered sweep engines")
    sub.add_parser("solvers", help="list registered local solvers")
    sub.add_parser("backends", help="list registered study-execution backends")
    sub.add_parser("drivers", help="list registered outer-loop drivers")

    sub.add_parser("table1", help="print Table I (matrix sizes per order)")

    table2 = sub.add_parser("table2", help="run the Table II solver comparison (scaled down)")
    table2.add_argument("--max-order", type=int, default=3)

    fig3 = sub.add_parser("fig3", help="print the Figure 3 thread-scaling series (linear)")
    fig4 = sub.add_parser("fig4", help="print the Figure 4 thread-scaling series (cubic)")
    for p in (fig3, fig4):
        p.add_argument("--threads", type=int, nargs="+", default=list(PAPER_THREAD_COUNTS))

    balance = sub.add_parser("balance", help="solve and print particle-balance diagnostics")
    balance.add_argument("--n", type=int, default=4)
    balance.add_argument("--groups", type=int, default=2)
    balance.add_argument("--engine", type=str, default=None)

    verify = sub.add_parser(
        "verify",
        help="run the verification suites (MMS orders, conformance matrix, goldens)",
    )
    verify.add_argument(
        "--suite", action="append", choices=("mms", "conformance", "golden", "drivers"),
        default=None, metavar="NAME",
        help="suite to run: mms | conformance | golden | drivers "
        "(repeatable; default: all)",
    )
    verify.add_argument(
        "--update-golden", action="store_true",
        help="re-bless the golden store from the current build before checking "
        "(deterministic: an unchanged build rewrites byte-identical records)",
    )
    verify.add_argument(
        "--golden-dir", type=str, default=None, metavar="DIR",
        help="golden store directory (default: the repository's tests/golden/)",
    )
    verify.add_argument(
        "--jobs", type=int, default=None,
        help="worker cap for the conformance matrix's concurrent backends",
    )
    verify.add_argument(
        "--json", action="store_true",
        help="print the full machine-readable report instead of tables",
    )

    bench = sub.add_parser(
        "bench", help="run the registered benchmark suite (repro.bench)"
    )
    bench.add_argument(
        "--filter", action="append", default=None, metavar="TAG_OR_NAME",
        help="run only cases matching this name, alias or tag (repeatable; "
        "see --list)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="shrink every case to the CI smoke budget (UNSNAP_BENCH_* "
        "variables still override individual knobs)",
    )
    bench.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="write the unsnap-bench-v1 report to PATH",
    )
    bench.add_argument(
        "--compare", type=str, default=None, metavar="BASELINE",
        help="compare this run against a baseline unsnap-bench-v1 report",
    )
    bench.add_argument(
        "--fail-on-regress", action="store_true",
        help="exit 1 when --compare finds a sample beyond the slowdown "
        "tolerance (default: report only)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=None, metavar="FRACTION",
        help="slowdown tolerance for --compare (default 0.25 = 25%%)",
    )
    bench.add_argument(
        "--against-model", action="store_true",
        help="also run the sweep-vs-model overlay: measured sweep times "
        "against the perfmodel roofline prediction, with the model error",
    )
    bench.add_argument(
        "--list", action="store_true",
        help="list the registered benchmark cases (with tags) and exit",
    )
    bench.add_argument(
        "--trend", type=str, default=None, metavar="DIR",
        help="skip measuring: line up the per-case best seconds of every "
        "unsnap-bench-v1 report in DIR as a time series (ordered by file "
        "mtime; --json PATH writes the unsnap-bench-trend-v1 document)",
    )

    serve = sub.add_parser(
        "serve", help="run the job-queue daemon + HTTP gateway (repro.service)"
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 picks a free port; the chosen one is printed)",
    )
    serve.add_argument(
        "--store", type=str, default=None, metavar="DIR",
        help="result-store directory used as the request-dedup cache "
        "(identical submissions are served from it without a new solve)",
    )
    serve.add_argument(
        "--backend", type=str, default="serial",
        help="execution backend name or alias: serial | thread | process "
        "(see 'unsnap backends')",
    )
    serve.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker threads draining the job queue (default 2)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="maximum queued jobs before submissions get 429 (default 64)",
    )
    serve.add_argument(
        "--max-body-bytes", type=int, default=None, metavar="N",
        help="maximum request body size before submissions get 413 "
        "(default 1 MiB)",
    )
    serve.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="append unsnap-trace-v1 spans (queue wait, execution, "
        "in-process telemetry phases) for every job to PATH; submissions "
        "may join an existing trace via the X-Unsnap-Trace header",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log every request to stderr",
    )

    worker = sub.add_parser(
        "worker", help="serve a distributed-campaign spool directory"
    )
    worker.add_argument("spool", type=str, help="spool directory (shared filesystem)")
    worker.add_argument(
        "--id", type=str, default=None, metavar="WORKER_ID",
        help="worker identity written into claims and heartbeats "
        "(default: host-pid)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="idle sleep between queue checks (default 0.2)",
    )
    worker.add_argument(
        "--heartbeat", type=float, default=1.0, metavar="SECONDS",
        help="heartbeat-file touch period; keep well under the campaign "
        "lease (default 1.0)",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after executing N jobs (default: run until STOP)",
    )
    worker.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit after this long with an empty queue (default: wait for STOP)",
    )

    store = sub.add_parser("store", help="result-store maintenance")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    gc = store_sub.add_parser(
        "gc", help="compact a campaign result store (never a golden store)"
    )
    gc.add_argument("dir", type=str, help="result-store directory")
    gc.add_argument(
        "--keep-latest", type=int, default=None, metavar="N",
        help="keep only the N most recently written records",
    )
    gc.add_argument(
        "--max-age", type=float, default=None, metavar="DAYS",
        help="drop records not written for this many days",
    )
    gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="drop the oldest records until the store fits in N bytes",
    )
    gc.add_argument(
        "--drop-flux", action="store_true",
        help="rewrite surviving records without the embedded flux arrays "
        "(records stay loadable, but no longer resume a study bit-for-bit)",
    )
    gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would happen without touching the store",
    )
    merge = store_sub.add_parser(
        "merge",
        help="fold one or more source stores into a destination store "
        "(sharded-campaign merge; never a golden destination)",
    )
    merge.add_argument("dest", type=str, help="destination result-store directory")
    merge.add_argument(
        "sources", type=str, nargs="+", metavar="SOURCE",
        help="source result-store directories to fold in",
    )
    merge.add_argument(
        "--overwrite", action="store_true",
        help="source records replace existing destination records of the "
        "same run key (default: destination wins, duplicates are skipped)",
    )

    spool = sub.add_parser("spool", help="spool-directory observability")
    spool_sub = spool.add_subparsers(dest="spool_command", required=True)
    spool_status = spool_sub.add_parser(
        "status",
        help="pending/claimed/done counts, worker heartbeats, quarantine reasons",
    )
    spool_status.add_argument("dir", type=str, help="spool directory")
    spool_status.add_argument(
        "--lease", type=float, default=15.0, metavar="SECONDS",
        help="liveness horizon for worker heartbeats (default 15)",
    )
    spool_status.add_argument(
        "--json", action="store_true", help="print the raw status dict as JSON"
    )
    spool_status.add_argument(
        "--html", action="store_true",
        help="print a static HTML dashboard page instead of text",
    )

    trace = sub.add_parser(
        "trace", help="summarize unsnap-trace-v1 span files (repro.obs)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary",
        help="per-trace makespan, queue wait, phase/worker breakdown, "
        "critical path",
    )
    trace_tree = trace_sub.add_parser(
        "tree", help="render the span forest of each trace"
    )
    for p in (trace_summary, trace_tree):
        p.add_argument(
            "paths", type=str, nargs="+", metavar="FILE_OR_DIR",
            help="span JSONL files and/or directories of *.jsonl "
            "(e.g. the spool's trace/ directory)",
        )
        p.add_argument(
            "--trace-id", type=str, default=None, metavar="ID",
            help="restrict to one trace id (default: every trace found)",
        )
    trace_summary.add_argument(
        "--json", action="store_true",
        help="print the machine-readable summaries instead of text",
    )
    return parser


def _add_problem_flags(parser: argparse.ArgumentParser) -> None:
    """Problem flags shared by ``run`` and ``study`` (base spec definition)."""
    parser.add_argument("--deck", type=str, default=None, help="path to a SNAP-style input deck")
    # Problem flags default to None so that, with --deck, only flags the user
    # actually passed override the deck values (see _RUN_FLAG_DEFAULTS).
    parser.add_argument("--nx", type=int, default=None)
    parser.add_argument("--ny", type=int, default=None)
    parser.add_argument("--nz", type=int, default=None)
    parser.add_argument("--order", type=int, default=None)
    parser.add_argument("--nang", type=int, default=None, help="angles per octant")
    parser.add_argument("--groups", type=int, default=None)
    parser.add_argument("--twist", type=float, default=None)
    parser.add_argument("--inners", type=int, default=None)
    parser.add_argument("--outers", type=int, default=None)
    parser.add_argument(
        "--solver", type=str, default=None,
        help="local solver name (see 'unsnap solvers'); default ge",
    )
    parser.add_argument(
        "--engine", type=str, default=None,
        help="sweep engine name or alias: reference | vectorized | "
        "prefactorized | ... (see 'unsnap engines'); default from the deck "
        "or 'reference'",
    )
    parser.add_argument(
        "--threads", type=int, default=1,
        help="worker threads: whole octants with --octant-parallel, "
        "otherwise the reference engine's bucket loop",
    )
    parser.add_argument(
        "--octant-parallel", action="store_true", default=None,
        help="sweep the 8 octants concurrently on the --threads pool "
        "(deterministic reduction order; default from the deck or off)",
    )
    parser.add_argument("--npex", type=int, default=None)
    parser.add_argument("--npey", type=int, default=None)
    parser.add_argument(
        "--driver", type=str, default=None,
        help="outer-loop driver: fixed_source | k_eigenvalue | time_dependent "
        "(see 'unsnap drivers'); default from the deck or 'fixed_source'",
    )
    parser.add_argument(
        "--dt", type=float, default=None,
        help="time_dependent driver: backward-Euler step size",
    )
    parser.add_argument(
        "--steps", type=int, default=None,
        help="time_dependent driver: number of steps (t_end in the deck overrides)",
    )
    parser.add_argument(
        "--k-tol", type=float, default=None,
        help="k_eigenvalue driver: power-iteration convergence tolerance on k",
    )
    parser.add_argument(
        "--cache-budget", type=int, default=None,
        help="factor-cache byte budget for caching engines (prefactorized, "
        "compiled): LRU entries past the budget are spilled and recomputed "
        "on demand; 0 (default) keeps the cache unbounded",
    )


#: ``run`` flag -> (ProblemSpec field, default used when no deck is given).
_RUN_FLAG_DEFAULTS = {
    "nx": ("nx", 6),
    "ny": ("ny", 6),
    "nz": ("nz", 6),
    "order": ("order", 1),
    "nang": ("angles_per_octant", 2),
    "groups": ("num_groups", 4),
    "twist": ("max_twist", 0.001),
    "inners": ("num_inners", 5),
    "outers": ("num_outers", 1),
    "solver": ("solver", "ge"),
    "engine": ("engine", "reference"),
    "octant_parallel": ("octant_parallel", False),
    "npex": ("npex", 1),
    "npey": ("npey", 1),
    "driver": ("driver", "fixed_source"),
    "dt": ("dt", 0.1),
    "steps": ("n_steps", 10),
    "k_tol": ("k_tolerance", 1e-6),
    "cache_budget": ("factor_cache_budget_bytes", 0),
}


def _spec_from_args(args: argparse.Namespace) -> ProblemSpec:
    if args.deck:
        # Every explicitly-passed flag overrides the corresponding deck value.
        overrides = {
            field: getattr(args, flag)
            for flag, (field, _default) in _RUN_FLAG_DEFAULTS.items()
            if getattr(args, flag) is not None
        }
        spec = parse_input_deck(args.deck)
        return spec.with_(**overrides) if overrides else spec
    values = {
        field: getattr(args, flag) if getattr(args, flag) is not None else default
        for flag, (field, default) in _RUN_FLAG_DEFAULTS.items()
    }
    return ProblemSpec(**values)


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
    except (KeyError, ValueError) as exc:
        # KeyError: unknown deck key (the parser names it and lists the valid
        # keys); ValueError: malformed value, or a [study] deck passed to
        # `run` (which gets the pointer to `unsnap study`).
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    try:
        # Resolve the names up front: argparse cannot use `choices=` here
        # because third-party engines/solvers/drivers register at runtime.
        get_engine(spec.engine)
        get_solver(spec.solver)
        get_driver(spec.driver)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    result = run(spec, num_threads=args.threads)
    if args.json:
        print(result.to_json())
        return 0
    summary = result.summary()
    rows = [
        ("engine", summary["engine"]),
        ("solver", summary["solver"]),
        ("ranks", summary["ranks"]),
        ("cells", summary["cells"]),
        ("groups", summary["groups"]),
        ("nodes per element", summary["nodes_per_element"]),
        ("inner iterations", summary["total_inners"]),
        ("assemble seconds", round(summary["assembly_seconds"], 4)),
        ("solve seconds", round(summary["solve_seconds"], 4)),
        ("solve fraction", round(summary["solve_fraction"], 3)),
        ("setup seconds", round(summary["setup_seconds"], 4)),
        ("wall seconds", round(summary["wall_seconds"], 4)),
        ("balance residual", f"{summary['balance_residual']:.3e}"),
        ("halo messages", summary["halo_messages"]),
        ("mean scalar flux", f"{summary['mean_flux']:.6f}"),
    ]
    if "k_effective" in summary:
        rows.extend([
            ("k-effective", f"{summary['k_effective']:.8f}"),
            ("power iterations", summary["power_iterations"]),
            ("dominance ratio", f"{summary['dominance_ratio']:.4f}"),
        ])
    if "time_steps" in summary:
        rows.extend([
            ("time steps", summary["time_steps"]),
            ("final time", summary["t_end"]),
        ])
    print(format_table(("quantity", "value"), rows, title="UnSNAP solve summary"))
    return 0


def _study_from_args(args: argparse.Namespace) -> Study:
    """Build the study: base from deck/flags, axes from deck [study] + --axis."""
    axes: dict[str, list] = {}
    name = "study"
    if args.deck:
        base, axes = loads_study_parts(Path(args.deck).read_text())
        overrides = {
            field: getattr(args, flag)
            for flag, (field, _default) in _RUN_FLAG_DEFAULTS.items()
            if getattr(args, flag) is not None
        }
        if overrides:
            base = base.with_(**overrides)
        name = Path(args.deck).stem
    else:
        base = _spec_from_args(args)
    for option in args.axis or []:
        field, values = parse_axis_option(option)
        axes[field] = values
    if args.threads != 1:
        # A uniform thread count becomes a one-value axis so it shows up in
        # the records; an explicit num_threads axis wins.
        axes.setdefault("num_threads", [args.threads])
    return Study.from_axes(base, axes, name=name)


def _cmd_study(args: argparse.Namespace) -> int:
    try:
        study = _study_from_args(args)
        backend = get_backend(args.backend)
        # Validate every grid point up front (spec ranges via with_, engine
        # and solver names via the registries) so a bad axis value is a
        # clean error before any run -- or worker process -- starts.
        for point in study.runs():
            get_engine(point.spec.engine)
            get_solver(point.spec.solver)
            get_driver(point.spec.driver)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    if args.spool is not None or args.lease is not None:
        if getattr(backend, "name", None) != "distributed":
            print(
                "error: --spool/--lease require --backend distributed",
                file=sys.stderr,
            )
            return 2
        from .campaign import DistributedBackend

        backend = DistributedBackend(spool_dir=args.spool, lease_seconds=args.lease)
        # A shared spool's store IS the campaign store: default --store to it
        # so a re-invocation resumes from cache (from_cache=True, zero new
        # runs) exactly like the other backends do with an explicit --store.
        if args.spool is not None and not args.store:
            args.store = str(Path(args.spool) / "store")
    store = ResultStore(args.store) if args.store else None
    if args.trace:
        from .obs.trace import SpanExporter, use_trace

        # One study, one trace: a root "study" span in the local file, the
        # ambient context handed to the backend (the distributed coordinator
        # stamps it into every spool payload, so worker spans join it).
        with SpanExporter(args.trace) as exporter:
            with exporter.span("study", attrs={"study": study.name}) as span:
                with use_trace(span.context()):
                    result = run_study(
                        study, backend=backend, store=store, jobs=args.jobs
                    )
    else:
        result = run_study(study, backend=backend, store=store, jobs=args.jobs)

    if args.json:
        print(json.dumps({"study": study.name, "records": result.records()}, indent=2))
        return 0
    axis_names = study.axis_names
    extras = [col for col in ("engine", "solver") if col not in axis_names]
    headers = (*axis_names, *extras, "wall s", "mean flux", "cached")
    rows = [
        (
            *[record[axis] for axis in axis_names],
            *[record[col] for col in extras],
            round(record["wall_seconds"], 4),
            f"{record['mean_flux']:.6f}",
            "yes" if record["from_cache"] else "-",
        )
        for record in result.records()
    ]
    print(
        format_table(
            headers,
            rows,
            title=f"Study {study.name!r}: {len(result)} runs via {args.backend} backend "
            f"({result.new_run_count} executed, {result.cached_run_count} cached)",
        )
    )
    return 0


def _print_listing(listing: list[tuple[str, str, str]], noun: str, title: str) -> int:
    """Shared body of the `engines`/`solvers`/`backends` listing commands."""
    rows = [(name, aliases or "-", desc) for name, aliases, desc in listing]
    print(format_table((noun, "aliases", "description"), rows, title=title))
    return 0


def _cmd_engines(_args: argparse.Namespace) -> int:
    return _print_listing(engine_listing(), "engine", "Registered sweep engines")


def _cmd_solvers(_args: argparse.Namespace) -> int:
    return _print_listing(solver_listing(), "solver", "Registered local solvers")


def _cmd_backends(_args: argparse.Namespace) -> int:
    return _print_listing(
        backend_listing(), "backend", "Registered study-execution backends"
    )


def _cmd_drivers(_args: argparse.Namespace) -> int:
    from .drivers import driver_listing

    return _print_listing(driver_listing(), "driver", "Registered outer-loop drivers")


def _cmd_table1(_args: argparse.Namespace) -> int:
    rows = [r.as_tuple() for r in table1_matrix_sizes()]
    print(
        format_table(
            ("order", "matrix size", "FP64 footprint (kB)"),
            rows,
            title="Table I: size of local matrix for different finite element orders",
        )
    )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    orders = tuple(range(1, args.max_order + 1))
    rows = [r.as_tuple() for r in table2_solver_comparison(orders=orders)]
    print(
        format_table(
            ("order", "solver", "assemble/solve (s)", "% in solve", "systems"),
            rows,
            title="Table II (scaled down): assemble/solve time per order and solver",
        )
    )
    return 0


def _cmd_fig(args: argparse.Namespace, order: int) -> int:
    threads = tuple(args.threads)
    series = figure3_series(threads) if order == 1 else figure4_series(threads)
    title = (
        "Figure 3: thread scaling of the parallel sweep (linear elements, model)"
        if order == 1
        else "Figure 4: thread scaling of the parallel sweep (cubic elements, model)"
    )
    print(format_scaling_series(series.thread_counts, series.series, title=title))
    most = series.thread_counts[-1]
    print(f"fastest scheme at {most} threads: {series.fastest_at(most)}")
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    spec = ProblemSpec(
        nx=args.n, ny=args.n, nz=args.n,
        order=1,
        angles_per_octant=2,
        num_groups=args.groups,
        num_inners=50, num_outers=20,
        inner_tolerance=1e-8, outer_tolerance=1e-8,
        engine=args.engine if args.engine is not None else "reference",
    )
    result = run(spec)
    b = result.balance
    rows = [
        (g, f"{b.emission[g]:.5f}", f"{b.absorption[g]:.5f}", f"{b.leakage[g]:.5f}",
         f"{b.residual[g]:+.2e}")
        for g in range(len(b.emission))
    ]
    print(
        format_table(
            ("group", "emission", "absorption", "leakage", "residual"),
            rows,
            title="Particle balance (converged solve)",
        )
    )
    print(f"total relative residual: {b.relative_residual():.3e}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify import SUITES, run_suite

    suites = tuple(args.suite) if args.suite else SUITES
    # Usage errors are caught up front; anything run_suite raises after this
    # is a real internal failure and deserves its traceback (damaged golden
    # records are *not* among them -- they report as failing cases).
    if args.update_golden and "golden" not in suites:
        print(
            "error: --update-golden requires the golden suite "
            "(add --suite golden or drop --suite)",
            file=sys.stderr,
        )
        return 2
    report = run_suite(
        suites,
        update_golden=args.update_golden,
        golden_dir=args.golden_dir,
        jobs=args.jobs,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(format_verification_report(report))
    return 0 if report.passed else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_bench_comparison, format_bench_report
    from .bench import BenchReport, benchmark_listing, run_benchmarks
    from .bench.report import DEFAULT_TOLERANCE

    if args.list:
        rows = benchmark_listing()
        print(format_table(("case", "tags", "description"), rows,
                           title="Registered benchmark cases"))
        return 0
    if args.trend is not None:
        from .bench.trend import build_trend, format_trend, load_trend_reports

        try:
            trend = build_trend(load_trend_reports(args.trend))
        except ValueError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(format_trend(trend))
        if args.json:
            path = Path(args.json)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(trend, indent=2) + "\n")
            print(f"\nwrote {path}")
        return 0
    if args.tolerance is not None and args.tolerance <= 0.0:
        print("error: --tolerance must be a positive fraction", file=sys.stderr)
        return 2
    baseline = None
    if args.compare is not None:
        # Load the baseline *before* spending minutes measuring.
        try:
            baseline = BenchReport.load(args.compare)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        report = run_benchmarks(
            args.filter,
            smoke=args.smoke,
            against_model=args.against_model,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(format_bench_report(report))
    if args.json:
        path = report.save(args.json)
        print(f"\nwrote {path}")
    if baseline is not None:
        tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        comparison = report.compare(baseline, tolerance=tolerance)
        print()
        print(format_bench_comparison(comparison))
        if args.fail_on_regress and not comparison.gate_passed:
            return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import DEFAULT_MAX_BODY_BYTES, ServiceDaemon, make_server

    exporter = None
    if args.trace:
        from .obs.trace import SpanExporter

        exporter = SpanExporter(args.trace)
    try:
        daemon = ServiceDaemon(
            store=args.store,
            backend=args.backend,
            workers=args.jobs,
            max_queue_depth=args.max_queue,
            trace_exporter=exporter,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    try:
        server = make_server(
            daemon,
            host=args.host,
            port=args.port,
            max_body_bytes=(
                args.max_body_bytes
                if args.max_body_bytes is not None
                else DEFAULT_MAX_BODY_BYTES
            ),
            quiet=not args.verbose,
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port} ({exc})", file=sys.stderr)
        return 2
    daemon.start()
    store_note = f", store={args.store}" if args.store else ""
    trace_note = f", trace={args.trace}" if args.trace else ""
    # The CI smoke job (and any supervisor) waits for this line before
    # submitting; keep it one flushed line with the bound host:port.
    print(
        f"unsnap service listening on http://{args.host}:{server.port} "
        f"(backend={daemon.backend_name}, workers={daemon.workers}"
        f"{store_note}{trace_note})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        daemon.shutdown()
        if exporter is not None:
            exporter.close()
    print("unsnap service shut down cleanly", flush=True)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .campaign.distributed import run_worker

    spool = Path(args.spool)
    if not spool.is_dir():
        print(f"error: {spool} is not a directory", file=sys.stderr)
        return 2
    executed = run_worker(
        spool,
        worker_id=args.id,
        poll_seconds=args.poll,
        heartbeat_seconds=args.heartbeat,
        max_jobs=args.max_jobs,
        idle_exit_seconds=args.idle_exit,
    )
    print(f"unsnap worker drained: {executed} jobs executed", flush=True)
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = ResultStore(args.dir)
    if not store.root.is_dir():
        print(f"error: {store.root} is not a directory", file=sys.stderr)
        return 2
    try:
        stats = store.gc(
            keep_latest=args.keep_latest,
            max_age_days=args.max_age,
            max_bytes=args.max_bytes,
            drop_flux=args.drop_flux,
            dry_run=args.dry_run,
        )
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    rows = [
        ("records", stats["records"]),
        ("removed", stats["removed"]),
        ("compacted", stats["compacted"]),
        ("bytes before", stats["bytes_before"]),
        ("bytes after", stats["bytes_after"]),
    ]
    title = "Result-store GC (dry run)" if args.dry_run else "Result-store GC"
    print(format_table(("quantity", "value"), rows, title=f"{title}: {store.root}"))
    return 0


def _cmd_store_merge(args: argparse.Namespace) -> int:
    dest = ResultStore(args.dest)
    merged = skipped = 0
    for source in args.sources:
        if not Path(source).is_dir():
            print(f"error: {source} is not a directory", file=sys.stderr)
            return 2
        try:
            stats = dest.merge(source, overwrite=args.overwrite)
        except ValueError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        merged += stats["merged"]
        skipped += stats["skipped"]
    rows = [
        ("sources", len(args.sources)),
        ("merged", merged),
        ("skipped", skipped),
        ("records now", len(dest)),
    ]
    print(
        format_table(
            ("quantity", "value"), rows, title=f"Result-store merge: {dest.root}"
        )
    )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    if args.store_command == "gc":
        return _cmd_store_gc(args)
    if args.store_command == "merge":
        return _cmd_store_merge(args)
    raise AssertionError(f"unhandled store command {args.store_command!r}")  # pragma: no cover


def _cmd_spool_status(args: argparse.Namespace) -> int:
    from .campaign.distributed.spool import SpoolDir
    from .obs.dashboard import render_spool_status, render_spool_status_html

    root = Path(args.dir)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    status = SpoolDir(root).status(lease_seconds=args.lease)
    if args.json:
        print(json.dumps(status, indent=2))
    elif args.html:
        print(render_spool_status_html(status))
    else:
        print(render_spool_status(status))
    return 0


def _cmd_spool(args: argparse.Namespace) -> int:
    if args.spool_command == "status":
        return _cmd_spool_status(args)
    raise AssertionError(f"unhandled spool command {args.spool_command!r}")  # pragma: no cover


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.trace import read_spans
    from .obs.tracetool import format_summary, format_tree, summarize_all

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such file or directory: {', '.join(missing)}", file=sys.stderr)
        return 2
    spans = read_spans(args.paths)
    if args.trace_id is not None:
        spans = [s for s in spans if s.get("trace_id") == args.trace_id]
    if not spans:
        selector = f" for trace {args.trace_id}" if args.trace_id else ""
        print(f"no unsnap-trace-v1 spans found{selector}", file=sys.stderr)
        return 1
    if args.trace_command == "tree":
        print(format_tree(spans))
        return 0
    summaries = summarize_all(spans)
    if getattr(args, "json", False):
        print(json.dumps({"traces": summaries}, indent=2))
        return 0
    print("\n\n".join(format_summary(summary) for summary in summaries))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``unsnap`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "study":
        return _cmd_study(args)
    if args.command == "engines":
        return _cmd_engines(args)
    if args.command == "solvers":
        return _cmd_solvers(args)
    if args.command == "backends":
        return _cmd_backends(args)
    if args.command == "drivers":
        return _cmd_drivers(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "table2":
        return _cmd_table2(args)
    if args.command == "fig3":
        return _cmd_fig(args, order=1)
    if args.command == "fig4":
        return _cmd_fig(args, order=3)
    if args.command == "balance":
        return _cmd_balance(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "spool":
        return _cmd_spool(args)
    if args.command == "trace":
        return _cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
