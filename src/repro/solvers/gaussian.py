"""Hand-written Gaussian elimination for the small dense local systems.

UnSNAP "offers both a hand-written direct Gaussian elimination solver and the
ability to utilise a LAPACK ``dgesv`` routine", with the hand-written version
vectorised over element nodes via OpenMP ``simd``.  The Python equivalent of
that vectorisation is the *batched* solver below: the elimination loop runs
over the matrix dimension (``N`` iterations) while every arithmetic operation
is a NumPy array operation over the whole batch of right-hand sides and over
the batch of systems (all energy groups of an element at once), which is the
same trade-off of short scalar loops around wide vector operations.

Partial pivoting is used for numerical robustness; the DG transport matrices
are diagonally dominant for physical cross sections, so pivoting almost never
permutes rows, but property-based tests exercise general systems.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_elimination_solve", "batched_gaussian_solve", "solve_flop_count"]


def solve_flop_count(n: int) -> float:
    """Approximate FLOP count of one dense solve, ``(2/3) n^3`` (paper: 0.67 N^3)."""
    return (2.0 / 3.0) * float(n) ** 3


def gaussian_elimination_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a single dense system by Gaussian elimination with partial pivoting.

    Parameters
    ----------
    matrix:
        ``(N, N)`` coefficient matrix (not modified).
    rhs:
        ``(N,)`` or ``(N, k)`` right-hand side(s) (not modified).

    Returns
    -------
    Solution array with the same shape as ``rhs``.
    """
    a = np.array(matrix, dtype=float, copy=True)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got shape {a.shape}")
    n = a.shape[0]
    b = np.array(rhs, dtype=float, copy=True)
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]
    if b.shape[0] != n:
        raise ValueError("rhs length does not match matrix size")

    for k in range(n):
        pivot = k + int(np.argmax(np.abs(a[k:, k])))
        if abs(a[pivot, k]) == 0.0:
            raise np.linalg.LinAlgError("matrix is singular")
        if pivot != k:
            a[[k, pivot]] = a[[pivot, k]]
            b[[k, pivot]] = b[[pivot, k]]
        factors = a[k + 1 :, k] / a[k, k]
        a[k + 1 :, k:] -= factors[:, None] * a[k, k:]
        b[k + 1 :] -= factors[:, None] * b[k]

    x = np.empty_like(b)
    for k in range(n - 1, -1, -1):
        x[k] = (b[k] - a[k, k + 1 :] @ x[k + 1 :]) / a[k, k]
    return x[:, 0] if squeeze else x


def batched_gaussian_solve(matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a batch of dense systems with one vectorised elimination.

    Parameters
    ----------
    matrices:
        ``(B, N, N)`` stack of coefficient matrices (not modified).
    rhs:
        ``(B, N)`` stack of right-hand sides (not modified).

    Returns
    -------
    ``(B, N)`` stack of solutions.

    Notes
    -----
    The elimination and back-substitution loops run over the matrix dimension
    only; all row operations are applied to every system of the batch
    simultaneously, which is the NumPy analogue of the OpenMP ``simd``
    vectorisation over element nodes in the C++ mini-app.  Partial pivoting
    is performed independently per system.
    """
    a = np.array(matrices, dtype=float, copy=True)
    b = np.array(rhs, dtype=float, copy=True)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError(f"matrices must have shape (B, N, N), got {a.shape}")
    if b.shape != a.shape[:2]:
        raise ValueError(f"rhs must have shape (B, N) = {a.shape[:2]}, got {b.shape}")
    batch, n = a.shape[0], a.shape[1]
    batch_index = np.arange(batch)

    for k in range(n):
        pivot = k + np.argmax(np.abs(a[:, k:, k]), axis=1)
        if np.any(np.abs(a[batch_index, pivot, k]) == 0.0):
            raise np.linalg.LinAlgError("at least one matrix in the batch is singular")
        needs_swap = pivot != k
        if np.any(needs_swap):
            rows_k = a[batch_index, k].copy()
            rows_p = a[batch_index, pivot].copy()
            a[batch_index[needs_swap], k] = rows_p[needs_swap]
            a[batch_index[needs_swap], pivot[needs_swap]] = rows_k[needs_swap]
            bk = b[batch_index, k].copy()
            bp = b[batch_index, pivot].copy()
            b[batch_index[needs_swap], k] = bp[needs_swap]
            b[batch_index[needs_swap], pivot[needs_swap]] = bk[needs_swap]
        factors = a[:, k + 1 :, k] / a[:, k, k][:, None]
        a[:, k + 1 :, k:] -= factors[:, :, None] * a[:, None, k, k:]
        b[:, k + 1 :] -= factors * b[:, k][:, None]

    x = np.empty_like(b)
    for k in range(n - 1, -1, -1):
        x[:, k] = (b[:, k] - np.einsum("bj,bj->b", a[:, k, k + 1 :], x[:, k + 1 :])) / a[:, k, k]
    return x
