"""Batched LU factorisation for the pre-factorised sweep engine.

Section IV-B.1 of the paper observes that the per-element streaming +
collision matrices are fixed across the inner (and outer) iterations of a
fixed-cross-section solve, so their factorisations can be computed *once*
and reused for every subsequent right-hand side -- turning the per-sweep
``O(N^3)`` dense solve into an ``O(N^2)`` pair of triangular substitutions.

Two batched factorisation backends are provided, mirroring the package's
two local-solver families:

* :func:`batched_gaussian_lu_factor` / :func:`batched_gaussian_lu_solve`
  -- a hand-written LU with partial pivoting, vectorised over the batch
  exactly like :func:`repro.solvers.gaussian.batched_gaussian_solve` (the
  same elimination order, so results agree to machine precision);
* :func:`batched_lapack_lu_factor` / :func:`batched_lapack_lu_solve` --
  SciPy's ``lu_factor``/``lu_solve`` (LAPACK ``getrf``/``getrs``), which
  accept stacked ``(B, N, N)`` systems.

A factorisation is the opaque pair ``(lu, piv)``; callers must treat it as
a token produced by the matching ``factor`` function.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = [
    "batched_gaussian_lu_factor",
    "batched_gaussian_lu_solve",
    "batched_lapack_lu_factor",
    "batched_lapack_lu_solve",
]

BatchedLU = tuple[np.ndarray, np.ndarray]


def batched_gaussian_lu_factor(matrices: np.ndarray) -> BatchedLU:
    """LU-factorise a batch of dense systems with one vectorised elimination.

    Parameters
    ----------
    matrices:
        ``(B, N, N)`` stack of coefficient matrices (not modified).

    Returns
    -------
    ``(lu, piv)`` where ``lu`` is the ``(B, N, N)`` packed factorisation
    (unit lower triangle below the diagonal, upper triangle on and above)
    and ``piv`` the ``(B, N)`` sequence of row swaps, in LAPACK ``getrf``
    convention: at step ``k`` row ``k`` was swapped with row ``piv[:, k]``.

    Notes
    -----
    The elimination runs over the matrix dimension only, with every row
    operation applied to the whole batch at once -- the same vectorisation
    (and the same pivot choices and arithmetic) as
    :func:`repro.solvers.gaussian.batched_gaussian_solve`, so a factor +
    solve reproduces the one-shot solve to machine precision.
    """
    a = np.array(matrices, dtype=float, copy=True)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError(f"matrices must have shape (B, N, N), got {a.shape}")
    batch, n = a.shape[0], a.shape[1]
    batch_index = np.arange(batch)
    piv = np.empty((batch, n), dtype=np.int64)

    for k in range(n):
        pivot = k + np.argmax(np.abs(a[:, k:, k]), axis=1)
        piv[:, k] = pivot
        needs_swap = pivot != k
        if np.any(needs_swap):
            rows_k = a[batch_index, k].copy()
            rows_p = a[batch_index, pivot].copy()
            a[batch_index[needs_swap], k] = rows_p[needs_swap]
            a[batch_index[needs_swap], pivot[needs_swap]] = rows_k[needs_swap]
        if np.any(np.abs(a[:, k, k]) == 0.0):
            raise np.linalg.LinAlgError("at least one matrix in the batch is singular")
        factors = a[:, k + 1 :, k] / a[:, k, k][:, None]
        a[:, k + 1 :, k + 1 :] -= factors[:, :, None] * a[:, None, k, k + 1 :]
        # Store the multipliers in the eliminated column: packed LU.
        a[:, k + 1 :, k] = factors
    return a, piv


def batched_gaussian_lu_solve(factorisation: BatchedLU, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(B, N)`` right-hand sides against a packed batched LU.

    Applies the recorded row swaps, then one vectorised forward and one
    backward substitution -- ``O(N^2)`` per system instead of the
    ``O(N^3)`` elimination.
    """
    lu, piv = factorisation
    b = np.array(rhs, dtype=float, copy=True)
    if b.shape != lu.shape[:2]:
        raise ValueError(f"rhs must have shape (B, N) = {lu.shape[:2]}, got {b.shape}")
    batch, n = lu.shape[0], lu.shape[1]
    batch_index = np.arange(batch)

    for k in range(n):
        pivot = piv[:, k]
        needs_swap = pivot != k
        if np.any(needs_swap):
            bk = b[batch_index, k].copy()
            bp = b[batch_index, pivot].copy()
            b[batch_index[needs_swap], k] = bp[needs_swap]
            b[batch_index[needs_swap], pivot[needs_swap]] = bk[needs_swap]
    for k in range(n - 1):
        b[:, k + 1 :] -= lu[:, k + 1 :, k] * b[:, k][:, None]
    x = np.empty_like(b)
    for k in range(n - 1, -1, -1):
        x[:, k] = (b[:, k] - np.einsum("bj,bj->b", lu[:, k, k + 1 :], x[:, k + 1 :])) / lu[:, k, k]
    return x


def batched_lapack_lu_factor(matrices: np.ndarray) -> BatchedLU:
    """LU-factorise a batch of dense systems via LAPACK ``getrf``.

    Recent SciPy accepts stacked ``(B, N, N)`` input directly; on older
    versions (which reject N-D input with ``ValueError``) the factorisation
    falls back to a per-system loop with identical results.
    """
    matrices = np.asarray(matrices, dtype=float)
    if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
        raise ValueError(f"matrices must have shape (B, N, N), got {matrices.shape}")
    try:
        return scipy.linalg.lu_factor(matrices)
    except ValueError:
        lu = np.empty_like(matrices)
        piv = np.empty(matrices.shape[:2], dtype=np.int64)
        for i in range(matrices.shape[0]):
            lu[i], piv[i] = scipy.linalg.lu_factor(matrices[i])
        return lu, piv


def batched_lapack_lu_solve(factorisation: BatchedLU, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(B, N)`` right-hand sides against a LAPACK ``getrf`` result."""
    lu, piv = factorisation
    rhs = np.asarray(rhs, dtype=float)
    if rhs.shape != lu.shape[:2]:
        raise ValueError(f"rhs must have shape (B, N) = {lu.shape[:2]}, got {rhs.shape}")
    try:
        return scipy.linalg.lu_solve(factorisation, rhs[..., None])[..., 0]
    except ValueError:
        # Pre-batched-SciPy fallback, one triangular solve per system.
        return np.stack(
            [scipy.linalg.lu_solve((lu[i], piv[i]), rhs[i]) for i in range(lu.shape[0])],
            axis=0,
        )
