"""Local dense linear solvers for the per-element DG systems.

The heart of the UnSNAP sweep is the assembly and solution of one small dense
system ``A psi = b`` per element, angle and group.  The paper compares a
hand-written vectorised Gaussian-elimination routine against LAPACK's
``dgesv`` (from the Intel MKL) and finds that the hand-written solver wins
for small matrices (orders <= 3, N <= 64) while the library wins for larger
ones (Table II).  This sub-package provides both paths plus batched variants
that solve the systems of all energy groups of an element at once, and
batched LU factor-once/solve-many routines backing the ``prefactorized``
sweep engine (paper Section IV-B.1).
"""

from .gaussian import batched_gaussian_solve, gaussian_elimination_solve
from .lapack import batched_lapack_solve, lapack_solve, lu_factor_solve
from .prefactor import (
    batched_gaussian_lu_factor,
    batched_gaussian_lu_solve,
    batched_lapack_lu_factor,
    batched_lapack_lu_solve,
)
from .registry import (
    LocalSolver,
    available_solvers,
    get_solver,
    register_solver,
    solver_aliases,
    solver_descriptions,
    solver_listing,
    unregister_solver,
)

__all__ = [
    "gaussian_elimination_solve",
    "batched_gaussian_solve",
    "lapack_solve",
    "batched_lapack_solve",
    "lu_factor_solve",
    "batched_gaussian_lu_factor",
    "batched_gaussian_lu_solve",
    "batched_lapack_lu_factor",
    "batched_lapack_lu_solve",
    "LocalSolver",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "available_solvers",
    "solver_aliases",
    "solver_descriptions",
    "solver_listing",
]
