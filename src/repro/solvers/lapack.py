"""LAPACK-backed local solvers (the paper's MKL ``dgesv`` path).

The C++ mini-app links against the Intel Math Kernel Library and calls
``dgesv`` for each local system.  NumPy and SciPy dispatch to the same LAPACK
interfaces (``gesv`` / ``getrf`` + ``getrs``), so :func:`lapack_solve` is the
faithful substitution: identical algorithm (LU with partial pivoting),
different vendor.  The batched variant stacks all energy-group systems of an
element and lets LAPACK loop over them, mirroring the "batched routine"
discussion of Section IV-B.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = ["lapack_solve", "batched_lapack_solve", "lu_factor_solve"]


def lapack_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve one dense system via LAPACK ``dgesv`` (``numpy.linalg.solve``)."""
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    return np.linalg.solve(matrix, rhs)


def batched_lapack_solve(matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a batch of dense systems via LAPACK.

    ``numpy.linalg.solve`` broadcasts over leading dimensions, calling the
    LAPACK kernel once per system, which is exactly what an MKL batched
    ``dgesv`` would do for on-the-fly constructed matrices.
    """
    matrices = np.asarray(matrices, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    if matrices.ndim != 3:
        raise ValueError(f"matrices must have shape (B, N, N), got {matrices.shape}")
    if rhs.shape != matrices.shape[:2]:
        raise ValueError(f"rhs must have shape (B, N), got {rhs.shape}")
    return np.linalg.solve(matrices, rhs[..., None])[..., 0]


def lu_factor_solve(matrix: np.ndarray, rhs_batch: np.ndarray) -> np.ndarray:
    """Factor once, solve many right-hand sides (the pre-assembly optimisation).

    Section IV-B.1 of the paper discusses pre-assembling (and factorising) the
    invariant local matrices and reusing them across iterations.  This helper
    provides that path: LU factorisation via ``scipy.linalg.lu_factor``
    followed by ``lu_solve`` for a batch of right-hand sides.

    Parameters
    ----------
    matrix:
        ``(N, N)`` coefficient matrix.
    rhs_batch:
        ``(N,)`` or ``(k, N)`` right-hand sides.
    """
    matrix = np.asarray(matrix, dtype=float)
    rhs_batch = np.asarray(rhs_batch, dtype=float)
    lu, piv = scipy.linalg.lu_factor(matrix)
    if rhs_batch.ndim == 1:
        return scipy.linalg.lu_solve((lu, piv), rhs_batch)
    return np.stack([scipy.linalg.lu_solve((lu, piv), r) for r in rhs_batch], axis=0)
