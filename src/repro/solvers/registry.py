"""Registry of local solvers selectable by name.

The input deck (and the benchmark harness) selects the local solver by name,
matching UnSNAP's build/run-time choice between the hand-written Gaussian
elimination and the MKL ``dgesv`` path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .gaussian import batched_gaussian_solve, gaussian_elimination_solve
from .lapack import batched_lapack_solve, lapack_solve

__all__ = ["LocalSolver", "get_solver", "available_solvers"]


@dataclass(frozen=True)
class LocalSolver:
    """A named local solver with single-system and batched entry points.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"ge"`` or ``"lapack"``.
    description:
        Human-readable description used in reports.
    solve:
        Callable ``(matrix (N, N), rhs (N,)) -> (N,)``.
    solve_batched:
        Callable ``(matrices (B, N, N), rhs (B, N)) -> (B, N)``.
    """

    name: str
    description: str
    solve: Callable[[np.ndarray, np.ndarray], np.ndarray]
    solve_batched: Callable[[np.ndarray, np.ndarray], np.ndarray]


_REGISTRY: dict[str, LocalSolver] = {
    "ge": LocalSolver(
        name="ge",
        description="hand-written Gaussian elimination with partial pivoting "
        "(vectorised over the batch, the paper's GE path)",
        solve=gaussian_elimination_solve,
        solve_batched=batched_gaussian_solve,
    ),
    "lapack": LocalSolver(
        name="lapack",
        description="LAPACK dgesv via NumPy/SciPy (the paper's MKL path)",
        solve=lapack_solve,
        solve_batched=batched_lapack_solve,
    ),
}

#: Aliases accepted by :func:`get_solver`.
_ALIASES = {
    "gaussian": "ge",
    "gauss": "ge",
    "handwritten": "ge",
    "mkl": "lapack",
    "dgesv": "lapack",
    "numpy": "lapack",
}


def available_solvers() -> list[str]:
    """Names of all registered solvers."""
    return sorted(_REGISTRY)


def get_solver(name: str) -> LocalSolver:
    """Look up a solver by name or alias (case-insensitive)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; available: {available_solvers()}"
        ) from None
