"""Registry of local solvers selectable by name.

The input deck (and the benchmark harness) selects the local solver by name,
matching UnSNAP's build/run-time choice between the hand-written Gaussian
elimination and the MKL ``dgesv`` path.  Third-party solvers can be plugged
in through :func:`register_solver`; the name+alias mechanics are shared with
the sweep-engine registry via :class:`repro.registry.Registry`::

    from repro.solvers import LocalSolver, register_solver

    register_solver(LocalSolver(name="mine", description="...",
                                solve=my_solve, solve_batched=my_batched))
    repro.run(spec.with_(solver="mine"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..registry import Registry
from .gaussian import batched_gaussian_solve, gaussian_elimination_solve
from .lapack import batched_lapack_solve, lapack_solve
from .prefactor import (
    batched_gaussian_lu_factor,
    batched_gaussian_lu_solve,
    batched_lapack_lu_factor,
    batched_lapack_lu_solve,
)

__all__ = [
    "LocalSolver",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "available_solvers",
    "solver_aliases",
    "solver_descriptions",
    "solver_listing",
]


@dataclass(frozen=True)
class LocalSolver:
    """A named local solver with single-system and batched entry points.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"ge"`` or ``"lapack"``.
    description:
        Human-readable description used in reports.
    solve:
        Callable ``(matrix (N, N), rhs (N,)) -> (N,)``.
    solve_batched:
        Callable ``(matrices (B, N, N), rhs (B, N)) -> (B, N)``.
    factor_batched, solve_factored:
        Optional factor-once/solve-many pair used by the ``prefactorized``
        sweep engine: ``factor_batched(matrices (B, N, N))`` returns an
        opaque factorisation token and ``solve_factored(token, rhs (B, N))``
        solves against it in ``O(N^2)`` per system.  Solvers that leave
        these ``None`` fall back to the hand-written batched LU.
    prefactorisation_exact:
        Whether the factor-once/solve-many pair reproduces
        ``solve_batched`` *bit for bit* (same elimination order, same
        rounding).  The conformance matrix (:mod:`repro.verify.conformance`)
        asserts exact flux equality between the ``vectorized`` and
        ``prefactorized`` engines for solvers that claim this; ``ge`` does
        (the packed LU replays the one-shot elimination), ``lapack`` does
        not (``numpy.linalg.solve`` and scipy's ``lu_factor``/``lu_solve``
        round differently).
    """

    name: str
    description: str
    solve: Callable[[np.ndarray, np.ndarray], np.ndarray]
    solve_batched: Callable[[np.ndarray, np.ndarray], np.ndarray]
    factor_batched: Callable[[np.ndarray], object] | None = None
    solve_factored: Callable[[object, np.ndarray], np.ndarray] | None = None
    prefactorisation_exact: bool = False

    @property
    def supports_prefactorisation(self) -> bool:
        """Whether this solver ships its own factor-once/solve-many pair."""
        return self.factor_batched is not None and self.solve_factored is not None


_SOLVERS: Registry[LocalSolver] = Registry("solver")

_SOLVERS.add(
    "ge",
    LocalSolver(
        name="ge",
        description="hand-written Gaussian elimination with partial pivoting "
        "(vectorised over the batch, the paper's GE path)",
        solve=gaussian_elimination_solve,
        solve_batched=batched_gaussian_solve,
        factor_batched=batched_gaussian_lu_factor,
        solve_factored=batched_gaussian_lu_solve,
        prefactorisation_exact=True,
    ),
    aliases=("gaussian", "gauss", "handwritten"),
)
_SOLVERS.add(
    "lapack",
    LocalSolver(
        name="lapack",
        description="LAPACK dgesv via NumPy/SciPy (the paper's MKL path)",
        solve=lapack_solve,
        solve_batched=batched_lapack_solve,
        factor_batched=batched_lapack_lu_factor,
        solve_factored=batched_lapack_lu_solve,
    ),
    aliases=("mkl", "dgesv", "numpy"),
)


def register_solver(
    solver: LocalSolver, *, aliases: tuple[str, ...] = (), overwrite: bool = False
) -> LocalSolver:
    """Register a :class:`LocalSolver` under its ``name`` (public extension point).

    Parameters
    ----------
    solver:
        The solver to register; ``solver.name`` (lower-cased) is the registry
        key used by the input deck, :func:`repro.run` and ``unsnap run``.
    aliases:
        Extra names accepted by :func:`get_solver`.
    overwrite:
        Allow replacing an existing registration.
    """
    return _SOLVERS.add(solver.name, solver, aliases=aliases, overwrite=overwrite)


def unregister_solver(name: str) -> None:
    """Remove a solver (and its aliases) from the registry."""
    _SOLVERS.remove(name)


def available_solvers() -> list[str]:
    """Names of all registered solvers."""
    return _SOLVERS.available()


def solver_aliases(name: str) -> list[str]:
    """Aliases registered for the given solver name."""
    return _SOLVERS.aliases_of(name)


def solver_descriptions() -> list[tuple[str, str]]:
    """``(name, description)`` pairs for reports and ``unsnap solvers``."""
    return _SOLVERS.descriptions()


def solver_listing() -> list[tuple[str, str, str]]:
    """``(name, aliases, description)`` rows for ``unsnap solvers``."""
    return _SOLVERS.listing()


def get_solver(name: str) -> LocalSolver:
    """Look up a solver by name or alias (case-insensitive)."""
    return _SOLVERS.resolve(name)
