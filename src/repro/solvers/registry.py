"""Registry of local solvers selectable by name.

The input deck (and the benchmark harness) selects the local solver by name,
matching UnSNAP's build/run-time choice between the hand-written Gaussian
elimination and the MKL ``dgesv`` path.  Third-party solvers can be plugged
in through :func:`register_solver`, mirroring the sweep-engine registry of
:mod:`repro.engines`::

    from repro.solvers import LocalSolver, register_solver

    register_solver(LocalSolver(name="mine", description="...",
                                solve=my_solve, solve_batched=my_batched))
    repro.run(spec.with_(solver="mine"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .gaussian import batched_gaussian_solve, gaussian_elimination_solve
from .lapack import batched_lapack_solve, lapack_solve

__all__ = [
    "LocalSolver",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "available_solvers",
    "solver_descriptions",
]


@dataclass(frozen=True)
class LocalSolver:
    """A named local solver with single-system and batched entry points.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"ge"`` or ``"lapack"``.
    description:
        Human-readable description used in reports.
    solve:
        Callable ``(matrix (N, N), rhs (N,)) -> (N,)``.
    solve_batched:
        Callable ``(matrices (B, N, N), rhs (B, N)) -> (B, N)``.
    """

    name: str
    description: str
    solve: Callable[[np.ndarray, np.ndarray], np.ndarray]
    solve_batched: Callable[[np.ndarray, np.ndarray], np.ndarray]


_REGISTRY: dict[str, LocalSolver] = {
    "ge": LocalSolver(
        name="ge",
        description="hand-written Gaussian elimination with partial pivoting "
        "(vectorised over the batch, the paper's GE path)",
        solve=gaussian_elimination_solve,
        solve_batched=batched_gaussian_solve,
    ),
    "lapack": LocalSolver(
        name="lapack",
        description="LAPACK dgesv via NumPy/SciPy (the paper's MKL path)",
        solve=lapack_solve,
        solve_batched=batched_lapack_solve,
    ),
}

#: Aliases accepted by :func:`get_solver`.
_ALIASES = {
    "gaussian": "ge",
    "gauss": "ge",
    "handwritten": "ge",
    "mkl": "lapack",
    "dgesv": "lapack",
    "numpy": "lapack",
}


def register_solver(
    solver: LocalSolver, *, aliases: tuple[str, ...] = (), overwrite: bool = False
) -> LocalSolver:
    """Register a :class:`LocalSolver` under its ``name`` (public extension point).

    Parameters
    ----------
    solver:
        The solver to register; ``solver.name`` (lower-cased) is the registry
        key used by the input deck, :func:`repro.run` and ``unsnap run``.
    aliases:
        Extra names accepted by :func:`get_solver`.
    overwrite:
        Allow replacing an existing registration.
    """
    key = solver.name.strip().lower()
    alias_keys = [alias.strip().lower() for alias in aliases]
    if not overwrite:
        # Validate every key before mutating anything so a conflict cannot
        # leave a partial registration behind.
        for k in (key, *alias_keys):
            if k in _REGISTRY or k in _ALIASES:
                raise ValueError(f"solver name {k!r} is already registered")
    _REGISTRY[key] = solver
    for alias_key in alias_keys:
        _ALIASES[alias_key] = key
    return solver


def unregister_solver(name: str) -> None:
    """Remove a solver (and its aliases) from the registry."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    _REGISTRY.pop(key, None)
    for alias in [a for a, target in _ALIASES.items() if target == key]:
        del _ALIASES[alias]


def available_solvers() -> list[str]:
    """Names of all registered solvers."""
    return sorted(_REGISTRY)


def solver_descriptions() -> list[tuple[str, str]]:
    """``(name, description)`` pairs for reports and ``unsnap solvers``."""
    return [(name, _REGISTRY[name].description) for name in available_solvers()]


def get_solver(name: str) -> LocalSolver:
    """Look up a solver by name or alias (case-insensitive)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; available: {available_solvers()}"
        ) from None
