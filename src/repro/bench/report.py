"""The ``unsnap-bench-v1`` report: one schema for every benchmark record.

Replaces the eight hand-rolled JSON shapes of the old ``bench_*.py`` scripts
with a single machine-readable format carrying machine info, the workload,
git metadata and per-case samples with warmup/repeat statistics, plus the
run-to-run comparison that turns two reports into a pass/warn/fail verdict
-- the regression gate behind ``unsnap bench --compare``.

Schema sketch::

    {
      "format": "unsnap-bench-v1",
      "machine": {"python": ..., "numpy": ..., "platform": ..., "cpus": ...},
      "git": {"commit": ..., "branch": ..., "dirty": ...} | null,
      "workload": {... BenchWorkload ...},
      "cases": [
        {"name": ..., "tags": [...], "warmup": W, "repeats": R,
         "samples": [
           {"name": ..., "seconds": [per-repeat raw wall clocks],
            "best": min, "mean": ..., "max": ..., "metrics": {...}}]}
      ]
    }

Comparisons match samples by ``(case, sample)`` name, compare *best* (min
over repeats -- the least-noise estimator) wall clocks and classify each
matched pair against a slowdown tolerance; samples present on only one side
are reported but never fail the gate (workloads legitimately evolve).
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from .workload import BenchWorkload

__all__ = [
    "FORMAT",
    "SampleStats",
    "CaseReport",
    "BenchReport",
    "SampleComparison",
    "BenchComparison",
    "compare_reports",
    "machine_info",
    "machine_fingerprint",
    "git_info",
]

#: Format marker written into (and required of) every report.
FORMAT = "unsnap-bench-v1"

#: Default slowdown tolerance of the regression gate: a sample is a
#: regression when it got more than 25% slower than the baseline, a warning
#: beyond half that.  Wall clocks on shared machines are noisy; the gate is
#: a tripwire for real regressions, not a micro-benchmark judge.
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class SampleStats:
    """Statistics of one named sample over the measured repeats."""

    name: str
    seconds: tuple[float, ...]
    metrics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.seconds:
            raise ValueError(f"sample {self.name!r} carries no measurements")

    @property
    def best(self) -> float:
        return min(self.seconds)

    @property
    def mean(self) -> float:
        return sum(self.seconds) / len(self.seconds)

    @property
    def worst(self) -> float:
        return max(self.seconds)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": list(self.seconds),
            "best": self.best,
            "mean": self.mean,
            "max": self.worst,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SampleStats":
        return cls(
            name=str(data["name"]),
            seconds=tuple(float(s) for s in data["seconds"]),
            metrics=dict(data.get("metrics", {})),
        )


@dataclass(frozen=True)
class CaseReport:
    """All samples of one benchmark case."""

    name: str
    tags: tuple[str, ...]
    samples: tuple[SampleStats, ...]
    warmup: int = 0
    repeats: int = 1

    def sample(self, name: str) -> SampleStats:
        for sample in self.samples:
            if sample.name == name:
                return sample
        raise KeyError(f"case {self.name!r} has no sample {name!r}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tags": list(self.tags),
            "warmup": self.warmup,
            "repeats": self.repeats,
            "samples": [sample.to_dict() for sample in self.samples],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CaseReport":
        return cls(
            name=str(data["name"]),
            tags=tuple(str(t) for t in data.get("tags", ())),
            samples=tuple(SampleStats.from_dict(s) for s in data["samples"]),
            warmup=int(data.get("warmup", 0)),
            repeats=int(data.get("repeats", 1)),
        )


def machine_info() -> dict:
    """Best-effort description of the measuring machine."""
    import numpy as np

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": __import__("os").cpu_count(),
    }


#: Machine-info keys that identify *hardware and runtime*, not the run:
#: two reports agreeing on these were (as far as the report can tell)
#: measured on the same kind of machine.
_FINGERPRINT_KEYS = ("platform", "machine", "cpus", "implementation", "python")


def machine_fingerprint(machine: dict) -> str:
    """A short stable identity string for a report's ``machine`` block.

    Built from the hardware/runtime keys only (platform, machine, cpu
    count, Python implementation and version), so re-running on the same
    box reproduces it while a laptop-vs-CI comparison does not.  An empty
    or key-less block fingerprints to ``""`` -- callers treat an unknown
    side as matching (the advisory must not fire on missing data).
    """
    parts = [
        f"{key}={machine[key]}" for key in _FINGERPRINT_KEYS if machine.get(key) is not None
    ]
    return "|".join(parts)


def git_info(cwd: str | Path | None = None) -> dict | None:
    """Current commit/branch/dirty flag, or ``None`` outside a checkout."""
    def _git(*args: str) -> str:
        return subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True, timeout=10,
        ).stdout.strip()

    try:
        commit = _git("rev-parse", "HEAD")
        if not commit:
            return None
        return {
            "commit": commit,
            "branch": _git("rev-parse", "--abbrev-ref", "HEAD"),
            "dirty": bool(_git("status", "--porcelain")),
        }
    except (OSError, subprocess.SubprocessError):
        return None


@dataclass(frozen=True)
class BenchReport:
    """One complete benchmark run in the ``unsnap-bench-v1`` schema."""

    cases: tuple[CaseReport, ...]
    workload: BenchWorkload = field(default_factory=BenchWorkload)
    machine: dict = field(default_factory=dict)
    git: dict | None = None

    def case(self, name: str) -> CaseReport:
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(f"report has no case {name!r}; cases: {[c.name for c in self.cases]}")

    def sample_index(self) -> dict[tuple[str, str], SampleStats]:
        """``(case, sample) -> stats`` over the whole report."""
        return {
            (case.name, sample.name): sample
            for case in self.cases
            for sample in case.samples
        }

    # ------------------------------------------------------------- export
    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "machine": dict(self.machine),
            "git": dict(self.git) if self.git is not None else None,
            "workload": self.workload.to_dict(),
            "cases": [case.to_dict() for case in self.cases],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        found = data.get("format") if isinstance(data, dict) else None
        if found != FORMAT:
            raise ValueError(
                f"not an {FORMAT} report (format={found!r}); legacy or foreign "
                f"benchmark JSON must be regenerated with 'unsnap bench --json'"
            )
        git = data.get("git")
        return cls(
            cases=tuple(CaseReport.from_dict(c) for c in data.get("cases", [])),
            workload=BenchWorkload.from_dict(data["workload"]),
            machine=dict(data.get("machine", {})),
            git=dict(git) if git is not None else None,
        )

    def save(self, path: str | Path) -> Path:
        """Write the report as pretty JSON (trailing newline, diff-friendly)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        """Read a report back; a clean error for corrupt or foreign JSON."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON ({exc})") from None
        try:
            return cls.from_dict(data)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from None

    def compare(self, baseline: "BenchReport", tolerance: float = DEFAULT_TOLERANCE):
        """Compare *this* (current) report against a baseline report."""
        return compare_reports(self, baseline, tolerance=tolerance)


@dataclass(frozen=True)
class SampleComparison:
    """Verdict of one matched ``(case, sample)`` pair.

    ``speedup`` is baseline-best over current-best: above 1 the sample got
    faster, below 1 slower.  The verdict classifies the *slowdown*
    ``1/speedup`` against the tolerance.
    """

    case: str
    sample: str
    baseline_seconds: float
    current_seconds: float
    verdict: str  # "pass" | "warn" | "fail"

    @property
    def speedup(self) -> float:
        """Baseline over current; a 0.0-second side maps to inf/1.0 rather
        than dividing by zero (sub-resolution timer deltas are legal)."""
        if self.current_seconds == 0.0:
            return 1.0 if self.baseline_seconds == 0.0 else float("inf")
        return self.baseline_seconds / self.current_seconds

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "sample": self.sample,
            "baseline_seconds": self.baseline_seconds,
            "current_seconds": self.current_seconds,
            "speedup": self.speedup,
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of comparing a current report against a baseline.

    ``workload_match`` records whether the two reports measured the same
    problem sizes; when they did not (e.g. a smoke run against a committed
    full-tier baseline) the wall clocks are not comparable, so the verdicts
    are advisory and :attr:`gate_passed` -- the ``--fail-on-regress``
    predicate -- never fails on them.

    ``machine_match`` records whether the two reports carry the same
    :func:`machine_fingerprint` (unknown on either side counts as a match).
    A mismatch is *purely advisory* -- it prints a warning but never fails
    the gate: cross-machine compares are legitimate, just noisy.
    """

    entries: tuple[SampleComparison, ...]
    missing: tuple[tuple[str, str], ...]  # in baseline, not measured now
    new: tuple[tuple[str, str], ...]      # measured now, not in baseline
    tolerance: float
    workload_match: bool = True
    machine_match: bool = True

    @property
    def verdict(self) -> str:
        """Worst per-sample verdict: ``fail`` > ``warn`` > ``pass``."""
        verdicts = {entry.verdict for entry in self.entries}
        if "fail" in verdicts:
            return "fail"
        if "warn" in verdicts:
            return "warn"
        return "pass"

    @property
    def passed(self) -> bool:
        return self.verdict != "fail"

    @property
    def gate_passed(self) -> bool:
        """The regression gate: fails only on a *comparable* regression."""
        return self.passed or not self.workload_match

    @property
    def regressions(self) -> tuple[SampleComparison, ...]:
        return tuple(e for e in self.entries if e.verdict == "fail")

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "workload_match": self.workload_match,
            "machine_match": self.machine_match,
            "tolerance": self.tolerance,
            "entries": [entry.to_dict() for entry in self.entries],
            "missing": [list(pair) for pair in self.missing],
            "new": [list(pair) for pair in self.new],
        }


def compare_reports(
    current: BenchReport, baseline: BenchReport, tolerance: float = DEFAULT_TOLERANCE
) -> BenchComparison:
    """Classify every matched sample of ``current`` against ``baseline``.

    A sample **fails** when its best wall clock slowed down by more than
    ``tolerance`` (fractional, default 25%), **warns** beyond half the
    tolerance, and **passes** otherwise -- including when it got faster.
    Samples present on only one side are listed as ``missing``/``new``
    without affecting the verdict.

    When the reports carry different *problem sizes* (any size-relevant
    :class:`~repro.bench.workload.BenchWorkload` field differs -- the
    warmup/repeat policy does not change per-sample cost), the comparison is
    flagged ``workload_match=False``: per-sample verdicts are still computed
    for the printed table, but they compare different amounts of work, so
    :attr:`BenchComparison.gate_passed` treats them as advisory.

    When the reports carry different *machine fingerprints*
    (:func:`machine_fingerprint` over the hardware/runtime keys), the
    comparison is flagged ``machine_match=False`` -- an advisory warning in
    the printed output that never affects the gate.
    """
    if tolerance <= 0.0:
        raise ValueError("tolerance must be positive")
    size_fields = ("n", "angles_per_octant", "num_groups", "sweeps", "jobs")
    workload_match = all(
        getattr(current.workload, field) == getattr(baseline.workload, field)
        for field in size_fields
    )
    current_fp = machine_fingerprint(current.machine)
    baseline_fp = machine_fingerprint(baseline.machine)
    machine_match = not current_fp or not baseline_fp or current_fp == baseline_fp
    current_samples = current.sample_index()
    baseline_samples = baseline.sample_index()
    entries = []
    for key in sorted(current_samples.keys() & baseline_samples.keys()):
        now = current_samples[key].best
        base = baseline_samples[key].best
        slowdown = now / base if base > 0 else 1.0
        if slowdown > 1.0 + tolerance:
            verdict = "fail"
        elif slowdown > 1.0 + tolerance / 2.0:
            verdict = "warn"
        else:
            verdict = "pass"
        entries.append(
            SampleComparison(
                case=key[0], sample=key[1],
                baseline_seconds=base, current_seconds=now,
                verdict=verdict,
            )
        )
    return BenchComparison(
        entries=tuple(entries),
        missing=tuple(sorted(baseline_samples.keys() - current_samples.keys())),
        new=tuple(sorted(current_samples.keys() - baseline_samples.keys())),
        tolerance=tolerance,
        workload_match=workload_match,
        machine_match=machine_match,
    )
