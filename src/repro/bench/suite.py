"""The benchmark suite runner: ``repro.bench.run_benchmarks()``.

Mirrors :func:`repro.verify.run_suite`: one call that discovers the
registered cases (optionally narrowed by name/alias/tag filters), applies
the measurement policy (warmup invocations discarded, repeat statistics
collected) and returns a :class:`~repro.bench.report.BenchReport` in the
``unsnap-bench-v1`` schema.  ``unsnap bench`` and the CI benchmark job are
thin wrappers over this.
"""

from __future__ import annotations

from typing import Callable

from .model import MODEL_CASE
from .registry import BenchCase, select_benchmarks
from .report import BenchReport, CaseReport, SampleStats, git_info, machine_info
from .workload import BenchWorkload

__all__ = ["run_benchmarks", "run_case"]


def run_case(case: BenchCase, workload: BenchWorkload) -> CaseReport:
    """Measure one case under the workload's warmup/repeat policy.

    The closure is invoked ``workload.warmup + workload.repeats`` times; the
    warmup invocations are discarded, the rest contribute one wall-clock
    sample each.  Non-timing metrics are taken from the final invocation
    (they describe the workload, not the noise).
    """
    for _ in range(workload.warmup):
        case.run(workload)
    seconds: dict[str, list[float]] = {}
    metrics: dict[str, dict] = {}
    order: list[str] = []
    for _ in range(workload.repeats):
        for name, sample in case.run(workload).items():
            if name not in seconds:
                seconds[name] = []
                order.append(name)
            seconds[name].append(float(sample["seconds"]))
            metrics[name] = {k: v for k, v in sample.items() if k != "seconds"}
    return CaseReport(
        name=case.name,
        tags=case.tags,
        samples=tuple(
            SampleStats(name=name, seconds=tuple(seconds[name]), metrics=metrics[name])
            for name in order
        ),
        warmup=workload.warmup,
        repeats=workload.repeats,
    )


def run_benchmarks(
    filters=None,
    *,
    smoke: bool = False,
    workload: BenchWorkload | None = None,
    against_model: bool = False,
    progress: Callable[[str], None] | None = None,
) -> BenchReport:
    """Run the selected benchmark cases and return the combined report.

    Parameters
    ----------
    filters:
        Case names, aliases or tags (``unsnap bench --filter``); ``None``
        runs every registered case except the measured-vs-model overlay.
    smoke:
        Use the shrunken smoke-tier workload (CI's per-PR budget).
    workload:
        Explicit workload override; default is
        :meth:`BenchWorkload.from_env(smoke=smoke)
        <repro.bench.workload.BenchWorkload.from_env>`.
    against_model:
        Also run the ``sweep-vs-model`` overlay case
        (:mod:`repro.bench.model`), which is excluded from unfiltered runs.
    progress:
        Optional callable receiving one line per started case (the CLI's
        live feedback).
    """
    if workload is None:
        workload = BenchWorkload.from_env(smoke=smoke)
    cases = select_benchmarks(filters)
    if not filters and not against_model:
        # The model overlay duplicates the engine measurements; it runs only
        # on request (--against-model) or through an explicit filter.
        cases = [case for case in cases if "model" not in case.tags]
    if against_model and all(case.name != MODEL_CASE for case in cases):
        cases = [*cases, select_benchmarks([MODEL_CASE])[0]]
    reports = []
    for case in cases:
        if progress is not None:
            progress(f"bench {case.name} [{', '.join(case.tags)}]")
        reports.append(run_case(case, workload))
    return BenchReport(
        cases=tuple(reports),
        workload=workload,
        machine=machine_info(),
        git=git_info(),
    )
