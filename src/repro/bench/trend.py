"""Benchmark trends: per-case best-seconds series over saved reports.

``unsnap bench --trend DIR`` reads every ``unsnap-bench-v1`` report in a
directory (the natural accumulation of a CI job archiving ``--json``
output per commit) and lines the per-sample *best* wall clocks up as a
time series -- the long-horizon complement of the two-report regression
gate of ``--compare``.  Ordering is ``(mtime, name)``: reports carry no
timestamp field, so the filesystem's write time is the series axis, with
the file name as a deterministic tie-break.

Machine identity is handled the same way as in comparisons: each report's
:func:`~repro.bench.report.machine_fingerprint` is checked against the
newest report's, and a mismatch is a *purely advisory* flag
(``machine_match=False``) on the entry -- cross-machine histories are
legitimate, just noisy, and must never turn into an error.
"""

from __future__ import annotations

from pathlib import Path

from .report import BenchReport, machine_fingerprint

__all__ = ["TREND_FORMAT", "load_trend_reports", "build_trend", "format_trend"]

#: Format marker of the ``--trend --json`` output document.
TREND_FORMAT = "unsnap-bench-trend-v1"


def load_trend_reports(directory: str | Path) -> list[tuple[Path, BenchReport]]:
    """Every loadable ``unsnap-bench-v1`` report in ``directory``.

    Returns ``(path, report)`` pairs ordered oldest first by
    ``(mtime, name)``.  Files that are not bench reports (foreign JSON, a
    trend document written next to them) are skipped, never fatal -- a
    results directory legitimately mixes artifacts.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ValueError(f"{directory} is not a directory")
    candidates = sorted(
        directory.glob("*.json"), key=lambda p: (p.stat().st_mtime, p.name)
    )
    reports = []
    for path in candidates:
        try:
            reports.append((path, BenchReport.load(path)))
        except (OSError, ValueError):
            continue
    return reports


def build_trend(reports: list[tuple[Path, BenchReport]]) -> dict:
    """The trend document: one best-seconds series per ``case/sample``.

    ``entries`` describe the reports in series order (label, machine
    fingerprint, the advisory ``machine_match`` against the newest
    report); ``series`` maps ``"case/sample"`` to per-report best seconds
    with ``None`` where a report did not measure that sample.
    """
    latest_fp = machine_fingerprint(reports[-1][1].machine) if reports else ""
    entries = []
    for path, report in reports:
        fingerprint = machine_fingerprint(report.machine)
        entries.append(
            {
                "label": path.stem,
                "path": str(path),
                "fingerprint": fingerprint,
                # Unknown on either side counts as a match: the advisory
                # must not fire on missing data.
                "machine_match": (
                    not fingerprint or not latest_fp or fingerprint == latest_fp
                ),
            }
        )
    keys = sorted({key for _path, report in reports for key in report.sample_index()})
    series = {}
    for case, sample in keys:
        indexed = []
        for _path, report in reports:
            stats = report.sample_index().get((case, sample))
            indexed.append(None if stats is None else stats.best)
        series[f"{case}/{sample}"] = indexed
    return {"format": TREND_FORMAT, "entries": entries, "series": series}


def format_trend(trend: dict) -> str:
    """Aligned text view of a :func:`build_trend` document."""
    entries = trend.get("entries", [])
    series = trend.get("series", {})
    if not entries:
        return "no unsnap-bench-v1 reports found"
    headers = ["case/sample", *(entry["label"] for entry in entries)]
    rows = []
    for name in sorted(series):
        cells = [
            "-" if best is None else f"{best:.4f}" for best in series[name]
        ]
        rows.append([name, *cells])
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    mismatched = [e["label"] for e in entries if not e["machine_match"]]
    if mismatched:
        lines.append("")
        lines.append(
            "note: machine fingerprint differs from the newest report for "
            + ", ".join(mismatched)
            + " (advisory only; cross-machine trends are noisy)"
        )
    return "\n".join(lines)
