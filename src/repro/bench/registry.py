"""The benchmark-case registry (fourth :class:`repro.registry.Registry`).

A benchmark case is a named, tagged measurement closure::

    from repro.bench import register_benchmark

    @register_benchmark("my-kernel", tags=("kernel",))
    def bench_my_kernel(workload):
        '''Time my kernel on the shared workload.'''
        t0 = time.perf_counter()
        ...
        return {"my-kernel": {"seconds": time.perf_counter() - t0}}

The closure receives the suite's :class:`~repro.bench.workload.BenchWorkload`
(sizes + shrink policy) and returns a mapping of *sample name* to a metrics
dict that must contain ``"seconds"``; any further entries (counts, cache
hits, model predictions) ride along into the report.  The suite runner
(:func:`repro.bench.suite.run_benchmarks`) invokes the closure
``warmup + repeats`` times and aggregates the per-sample statistics.

Registration follows exactly the engine/solver/backend pattern: canonical
case-insensitive names, aliases, listing helpers for the CLI, discovery by
name or tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..registry import Registry

__all__ = [
    "BenchCase",
    "register_benchmark",
    "get_benchmark",
    "available_benchmarks",
    "benchmark_listing",
    "available_tags",
    "select_benchmarks",
]


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark: a measurement closure plus metadata.

    Attributes
    ----------
    name:
        Canonical registry name.
    func:
        The measurement closure ``func(workload) -> {sample: {metrics}}``.
    tags:
        Free-form grouping labels (``kernel`` / ``scaling`` / ``study``)
        matched by ``unsnap bench --filter``.
    description:
        One-line summary for listings (defaults to the closure's docstring
        first line).
    """

    name: str
    func: Callable
    tags: tuple[str, ...] = ()
    description: str = field(default="")

    def run(self, workload) -> dict[str, dict]:
        """Execute the measurement once and validate its sample shape."""
        samples = self.func(workload)
        if not isinstance(samples, dict) or not samples:
            raise TypeError(
                f"benchmark {self.name!r} must return a non-empty dict of "
                f"sample -> metrics, got {type(samples).__name__}"
            )
        for sample, metrics in samples.items():
            if not isinstance(metrics, dict) or "seconds" not in metrics:
                raise TypeError(
                    f"benchmark {self.name!r} sample {sample!r} must be a dict "
                    f"with a 'seconds' entry, got {metrics!r}"
                )
            if not metrics["seconds"] >= 0.0:
                raise ValueError(
                    f"benchmark {self.name!r} sample {sample!r} reported a "
                    f"negative duration {metrics['seconds']!r}"
                )
        return samples


_benchmarks: Registry[BenchCase] = Registry("benchmark")


def register_benchmark(
    name: str,
    *,
    tags: tuple[str, ...] = (),
    description: str | None = None,
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
):
    """Class/function decorator registering a benchmark case under ``name``."""

    def decorator(func: Callable) -> Callable:
        doc = (func.__doc__ or "").strip().splitlines()
        case = BenchCase(
            name=name.strip().lower(),
            func=func,
            tags=tuple(tag.strip().lower() for tag in tags),
            description=description if description is not None else (doc[0] if doc else ""),
        )
        _benchmarks.add(name, case, aliases=aliases, overwrite=overwrite)
        return func

    return decorator


def get_benchmark(name: str) -> BenchCase:
    """Look up a registered case by canonical name or alias."""
    return _benchmarks.resolve(name)


def available_benchmarks() -> list[str]:
    """Sorted canonical names of every registered benchmark case."""
    return _benchmarks.available()


def benchmark_listing() -> list[tuple[str, str, str]]:
    """``(name, aliases, description)`` rows for ``unsnap bench --list``."""
    return [
        (name, ", ".join(f"{tag}" for tag in _benchmarks.resolve(name).tags), desc)
        for name, _aliases, desc in _benchmarks.listing()
    ]


def available_tags() -> list[str]:
    """Sorted union of every registered case's tags."""
    tags: set[str] = set()
    for name in _benchmarks.available():
        tags.update(_benchmarks.resolve(name).tags)
    return sorted(tags)


def select_benchmarks(filters=None) -> list[BenchCase]:
    """Resolve ``--filter`` values (names, aliases or tags) to cases.

    With no filters every registered case is returned (in name order).  Each
    filter selects the union of (a) the case registered under that name or
    alias and (b) every case carrying it as a tag; a filter matching nothing
    raises ``KeyError`` naming the valid choices.
    """
    if not filters:
        return [_benchmarks.resolve(name) for name in _benchmarks.available()]
    selected: dict[str, BenchCase] = {}
    for raw in filters:
        token = raw.strip().lower()
        matches: list[BenchCase] = []
        if token in _benchmarks:
            matches.append(_benchmarks.resolve(token))
        matches.extend(
            _benchmarks.resolve(name)
            for name in _benchmarks.available()
            if token in _benchmarks.resolve(name).tags
        )
        if not matches:
            raise KeyError(
                f"unknown benchmark filter {raw!r}; cases: {available_benchmarks()}, "
                f"tags: {available_tags()}"
            )
        for case in matches:
            selected.setdefault(case.name, case)
    return [selected[name] for name in sorted(selected)]
