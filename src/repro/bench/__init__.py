"""The benchmark & telemetry subsystem.

Mirrors :mod:`repro.verify` (machine-checked correctness) with the
machine-checked *performance* story the paper's claims rest on:

* a **benchmark-case registry** -- the fourth
  :class:`repro.registry.Registry` instantiation
  (:func:`register_benchmark`; built-in cases in :mod:`.cases` replace the
  old hand-rolled ``benchmarks/bench_*.py`` measurement bodies), each case a
  tagged measurement closure over the shared shrinkable
  :class:`BenchWorkload`;
* **phase-level telemetry** (:mod:`repro.telemetry`, re-exported here) --
  the :class:`Telemetry` instrument threaded through ``repro.run`` down to
  the sweep executor, recording per-phase wall time and counters with zero
  overhead when disabled;
* a **unified report format** (``unsnap-bench-v1``,
  :class:`~repro.bench.report.BenchReport` with ``load``/``save``/
  ``compare``) whose run-to-run comparison is the regression gate behind
  ``unsnap bench --compare [--fail-on-regress]``; and
* the **measured-vs-model overlay** (:mod:`.model`) connecting measured
  sweep times to the :mod:`repro.perfmodel` roofline prediction.

Usage::

    from repro.bench import run_benchmarks

    report = run_benchmarks(["kernel"], smoke=True)
    report.save("bench.json")
    comparison = report.compare(BenchReport.load("baseline.json"))
    assert comparison.passed
"""

from ..telemetry import PhaseTimer, Telemetry
from . import cases as _cases  # noqa: F401  -- registers the built-in cases
from . import model as _model  # noqa: F401  -- registers the overlay case
from .registry import (
    BenchCase,
    available_benchmarks,
    available_tags,
    benchmark_listing,
    get_benchmark,
    register_benchmark,
    select_benchmarks,
)
from .report import (
    BenchComparison,
    BenchReport,
    CaseReport,
    SampleStats,
    compare_reports,
    machine_fingerprint,
)
from .suite import run_benchmarks, run_case
from .trend import build_trend, format_trend, load_trend_reports
from .workload import BenchWorkload

__all__ = [
    "Telemetry",
    "PhaseTimer",
    "BenchWorkload",
    "BenchCase",
    "register_benchmark",
    "get_benchmark",
    "available_benchmarks",
    "available_tags",
    "benchmark_listing",
    "select_benchmarks",
    "run_benchmarks",
    "run_case",
    "BenchReport",
    "CaseReport",
    "SampleStats",
    "BenchComparison",
    "compare_reports",
    "machine_fingerprint",
    "load_trend_reports",
    "build_trend",
    "format_trend",
]
