"""Built-in benchmark cases: the paper's evaluation as registered workloads.

Each case here replaces one of the hand-rolled ``benchmarks/bench_*.py``
measurement bodies; the scripts remain as thin pytest wrappers over these
registered closures.  Every case derives its sizes from the shared
:class:`~repro.bench.workload.BenchWorkload` (so ``--smoke`` and the
``UNSNAP_BENCH_*`` knobs shrink everything coherently) and returns
``{sample: {"seconds": ..., **metrics}}`` as the registry contract requires.

Tags group the suite the way the paper's evaluation splits:

* ``kernel``  -- single-kernel ablations (assembly, local solve, engines);
* ``scaling`` -- thread-count and rank-count ensembles;
* ``study``   -- campaign-level grids through ``repro.run_study``;
* ``service`` -- the service layer (store-backed request dedup);
* ``drivers`` -- the outer-loop drivers (power-iteration throughput, time
  stepping with cross-step factor-cache reuse);
* ``model``   -- measured-vs-modelled overlays (run via ``--against-model``).
"""

from __future__ import annotations

import shutil
import tempfile
import time

import numpy as np

from ..angular.quadrature import snap_dummy_quadrature
from ..baseline.snap_fd import SnapDiamondDifferenceSolver
from ..campaign import Study, run_study
from ..campaign.backends import available_backends
from ..config import BoundaryCondition, ProblemSpec
from ..core.assembly import ElementMatrices
from ..core.sweep import SweepExecutor
from ..engines import available_engines
from ..fem.element import HexElementFactors
from ..fem.reference import ReferenceElement
from ..materials.library import snap_option1_library
from ..mesh.builder import StructuredGridSpec, build_snap_mesh
from ..runner import run
from ..solvers import available_solvers, get_solver
from ..sweepsched.graph import classify_faces
from ..sweepsched.schedule import build_sweep_schedule
from ..telemetry import Telemetry
from .registry import register_benchmark
from .workload import BenchWorkload

__all__ = ["build_sweep_executor", "local_systems"]


def build_sweep_executor(
    n: int,
    angles_per_octant: int,
    num_groups: int,
    order: int = 1,
    engine: str = "reference",
    solver: str = "ge",
    telemetry: Telemetry | None = None,
) -> tuple[SweepExecutor, np.ndarray]:
    """Standalone executor + unit source for kernel-level cases."""
    mesh = build_snap_mesh(StructuredGridSpec(n, n, n), max_twist=0.001)
    ref = ReferenceElement(order)
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    matrices = ElementMatrices.build(factors, ref)
    quadrature = snap_dummy_quadrature(angles_per_octant)
    executor = SweepExecutor(
        mesh=mesh,
        factors=factors,
        ref=ref,
        matrices=matrices,
        schedule=build_sweep_schedule(mesh, factors, quadrature),
        quadrature=quadrature,
        materials=snap_option1_library(num_groups).for_cells(mesh.num_cells),
        solver=solver,
        engine=engine,
        telemetry=telemetry,
    )
    source = np.ones((mesh.num_cells, num_groups, ref.num_nodes))
    return executor, source


def local_systems(order: int, num_groups: int, seed: int = 0):
    """A realistic batch of one element's per-group local systems."""
    rng = np.random.default_rng(seed)
    mesh = build_snap_mesh(StructuredGridSpec(2, 2, 2), max_twist=0.001)
    ref = ReferenceElement(order)
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    matrices = ElementMatrices.build(factors, ref)
    direction = np.array([0.5, 0.6, 0.62449979984])
    cls = classify_faces(factors, direction)
    sigma_t = 1.0 + 0.01 * np.arange(num_groups)
    source = rng.uniform(0.5, 1.5, size=(num_groups, ref.num_nodes))
    a, b = matrices.assemble_systems(0, direction, cls.orientation[0], sigma_t, source, {})
    return matrices, cls, direction, sigma_t, source, a, b


def _orders(workload: BenchWorkload) -> tuple[int, ...]:
    return (1, 2) if workload.smoke else (1, 2, 3)


# --------------------------------------------------------------------- kernel
@register_benchmark("engine-sweep", tags=("kernel", "engines"), aliases=("engines",))
def bench_engine_sweep(workload: BenchWorkload) -> dict[str, dict]:
    """Repeated full sweeps per registered engine (the Table II workload)."""
    samples: dict[str, dict] = {}
    for engine in available_engines():
        telemetry = Telemetry()
        executor, source = build_sweep_executor(
            workload.n, workload.angles_per_octant, workload.num_groups,
            engine=engine, telemetry=telemetry,
        )
        t0 = time.perf_counter()
        for _ in range(workload.sweeps):
            result = executor.sweep(source)
        seconds = time.perf_counter() - t0
        samples[engine] = {
            "seconds": seconds,
            "kernel_seconds": result.timings.total_seconds,
            "systems_solved": int(telemetry.counters.get("local_solves", 0)),
            "factor_cache_hits": int(telemetry.counters.get("factor_cache_hits", 0)),
            "factor_cache_misses": int(telemetry.counters.get("factor_cache_misses", 0)),
        }
    return samples


@register_benchmark("assembly-kernel", tags=("kernel",))
def bench_assembly_kernel(workload: BenchWorkload) -> dict[str, dict]:
    """Per-element, per-angle assembly of all group systems, per order."""
    iterations = 10 if workload.smoke else 50
    samples = {}
    for order in _orders(workload):
        matrices, cls, direction, sigma_t, source, _a, _b = local_systems(
            order, workload.num_groups
        )
        t0 = time.perf_counter()
        for _ in range(iterations):
            matrices.assemble_systems(0, direction, cls.orientation[0], sigma_t, source, {})
        samples[f"order-{order}"] = {
            "seconds": time.perf_counter() - t0,
            "iterations": iterations,
        }
    return samples


@register_benchmark("solve-kernel", tags=("kernel",))
def bench_solve_kernel(workload: BenchWorkload) -> dict[str, dict]:
    """Batched local dense solve per registered solver and order (Table II)."""
    iterations = 10 if workload.smoke else 50
    samples = {}
    for order in _orders(workload):
        *_rest, a, b = local_systems(order, workload.num_groups)
        for solver_name in available_solvers():
            solver = get_solver(solver_name)
            t0 = time.perf_counter()
            for _ in range(iterations):
                x = solver.solve_batched(a, b)
            samples[f"{solver_name}-order-{order}"] = {
                "seconds": time.perf_counter() - t0,
                "iterations": iterations,
                "residual": float(np.abs(np.einsum("gij,gj->gi", a, x) - b).max()),
            }
    return samples


@register_benchmark("matrix-setup", tags=("kernel", "setup"))
def bench_matrix_setup(workload: BenchWorkload) -> dict[str, dict]:
    """Reference-element tabulation + local-matrix precomputation (Table I)."""
    n = max(2, workload.n // 2)
    mesh = build_snap_mesh(StructuredGridSpec(n, n, n), max_twist=0.001)
    samples = {}
    for order in _orders(workload):
        t0 = time.perf_counter()
        ref = ReferenceElement(order)
        factors = HexElementFactors.build(mesh.cell_vertices(), ref)
        matrices = ElementMatrices.build(factors, ref)
        samples[f"order-{order}"] = {
            "seconds": time.perf_counter() - t0,
            "cells": mesh.num_cells,
            "matrix_size": matrices.num_nodes,
        }
    return samples


@register_benchmark("fd-vs-fem", tags=("kernel", "baseline"))
def bench_fd_vs_fem(workload: BenchWorkload) -> dict[str, dict]:
    """Section II-C: SNAP finite difference vs UnSNAP DGFEM solve time."""
    n = min(5, max(3, workload.n // 2))
    groups = min(2, workload.num_groups)
    angles = workload.angles_per_octant
    fd_solver = SnapDiamondDifferenceSolver(
        n, n, n, num_groups=groups, angles_per_octant=angles, num_inners=2
    )
    t0 = time.perf_counter()
    fd = fd_solver.solve()
    fd_seconds = time.perf_counter() - t0
    spec = ProblemSpec(
        nx=n, ny=n, nz=n, order=1, angles_per_octant=angles, num_groups=groups,
        max_twist=0.0, num_inners=2, num_outers=1, engine="vectorized",
    )
    t0 = time.perf_counter()
    fem = run(spec)
    fem_seconds = time.perf_counter() - t0
    return {
        "fd": {"seconds": fd_seconds, "mean_flux": float(fd.scalar_flux.mean())},
        "fem": {
            "seconds": fem_seconds,
            "mean_flux": float(fem.cell_average_flux.mean()),
            "work_ratio": fem_seconds / fd_seconds if fd_seconds > 0 else float("inf"),
        },
    }


# -------------------------------------------------------------------- scaling
@register_benchmark("thread-scaling-linear", tags=("scaling",), aliases=("fig3",))
def bench_thread_scaling_linear(workload: BenchWorkload) -> dict[str, dict]:
    """Measured octant-parallel thread scaling, linear elements (Figure 3)."""
    return _thread_scaling(workload, order=1, n=min(workload.n, 4))


@register_benchmark("thread-scaling-cubic", tags=("scaling",), aliases=("fig4",))
def bench_thread_scaling_cubic(workload: BenchWorkload) -> dict[str, dict]:
    """Measured octant-parallel thread scaling, cubic elements (Figure 4)."""
    return _thread_scaling(
        workload.with_(angles_per_octant=1, num_groups=min(2, workload.num_groups)),
        order=3, n=2,
    )


def _thread_scaling(workload: BenchWorkload, order: int, n: int) -> dict[str, dict]:
    base = ProblemSpec(
        nx=n, ny=n, nz=n, order=order,
        angles_per_octant=workload.angles_per_octant,
        num_groups=workload.num_groups,
        max_twist=0.001, num_inners=2, num_outers=1,
        octant_parallel=True,
    )
    thread_counts = (1, 2) if workload.smoke else (1, 2, 4)
    engines = ("vectorized", "prefactorized")
    study = Study.grid(
        base, name=f"thread-scaling-order{order}",
        engine=list(engines), num_threads=list(thread_counts),
    )
    result = run_study(study, backend="serial")
    samples = {}
    for study_run in result:
        label = f"{study_run.axes['engine']}-t{study_run.axes['num_threads']}"
        samples[label] = {
            "seconds": study_run.result.solve_seconds,
            "threads": int(study_run.axes["num_threads"]),
            "mean_flux": study_run.result.mean_flux,
        }
    return samples


@register_benchmark("block-jacobi-ranks", tags=("scaling", "parallel"))
def bench_block_jacobi_ranks(workload: BenchWorkload) -> dict[str, dict]:
    """Multi-rank block-Jacobi solves vs rank count (Section III-A.1)."""
    if workload.smoke:
        nx, ny, nz = 4, 2, 2
        grids = ((1, 1), (2, 1), (2, 2))
        num_inners = 4
    else:
        nx, ny, nz = 8, 4, 2
        grids = ((1, 1), (2, 1), (2, 2), (4, 2))
        # Enough lagged inners that every decomposition approaches the same
        # solution (the wrapper asserts cross-grid flux agreement).
        num_inners = 8
    base = ProblemSpec(
        nx=nx, ny=ny, nz=nz, order=1, angles_per_octant=1,
        num_groups=min(2, workload.num_groups),
        max_twist=0.001, num_inners=num_inners, num_outers=1,
    )
    samples = {}
    for npex, npey in grids:
        telemetry = Telemetry()
        t0 = time.perf_counter()
        result = run(base.with_(npex=npex, npey=npey), telemetry=telemetry)
        samples[f"{npex}x{npey}"] = {
            "seconds": time.perf_counter() - t0,
            "ranks": result.num_ranks,
            "halo_messages": result.messages,
            "halo_bytes": result.bytes_exchanged,
            "final_inner_error": float(result.history.inner_errors[-1]),
            "mean_flux": result.mean_flux,
            "halo_phase_seconds": float(
                telemetry.phase_seconds.get("solve.halo", 0.0)
            ),
        }
    return samples


# -------------------------------------------------------------------- service
@register_benchmark("service-dedup", tags=("service",))
def bench_service_dedup(workload: BenchWorkload) -> dict[str, dict]:
    """N identical service submissions vs N cold solves: the dedup win.

    The ``cold`` sample solves the same spec N times through plain
    :func:`repro.run`; the ``service`` sample submits the identical job N
    times to a :class:`~repro.service.ServiceDaemon` backed by a throwaway
    store, so exactly one solve executes and the rest are served by
    single-flight coalescing or the store.  The ``speedup`` metric is the
    dedup headline (>= 10x even on the smoke tier: one solve amortised over
    N requests).
    """
    from ..service import ServiceDaemon

    n_jobs = 24 if workload.smoke else 32
    spec = ProblemSpec(
        nx=workload.n, ny=workload.n, nz=workload.n, order=1,
        angles_per_octant=workload.angles_per_octant,
        num_groups=min(2, workload.num_groups),
        max_twist=0.001, num_inners=2, num_outers=1, engine="vectorized",
    )
    run(spec)  # warm the per-process setup caches out of both measurements
    t0 = time.perf_counter()
    for _ in range(n_jobs):
        run(spec)
    cold_seconds = time.perf_counter() - t0

    root = tempfile.mkdtemp(prefix="unsnap-bench-dedup-")
    try:
        with ServiceDaemon(store=root, backend="serial", workers=2) as daemon:
            t0 = time.perf_counter()
            jobs = [daemon.submit(spec, keep_flux=False) for _ in range(n_jobs)]
            for job in jobs:
                daemon.wait(job.id, timeout=300.0)
            service_seconds = time.perf_counter() - t0
            stats = daemon.stats()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "cold": {"seconds": cold_seconds, "runs": n_jobs},
        "service": {
            "seconds": service_seconds,
            "runs": n_jobs,
            "executed": stats["executed"],
            "cache_hits": stats["cache_hits"],
            "speedup": (
                cold_seconds / service_seconds if service_seconds > 0 else float("inf")
            ),
        },
    }


# -------------------------------------------------------------------- drivers
@register_benchmark("driver-k-eigenvalue", tags=("drivers",), aliases=("keff",))
def bench_driver_k_eigenvalue(workload: BenchWorkload) -> dict[str, dict]:
    """Power-iteration throughput of the ``k_eigenvalue`` driver.

    A reflected problem converged to ``k_tolerance``: the headline is
    seconds per power iteration (each one a full within-group solve), with
    the converged eigenpair alongside as a sanity anchor.
    """
    n = 2 if workload.smoke else min(workload.n, 3)
    spec = ProblemSpec(
        nx=n, ny=n, nz=n, order=1, angles_per_octant=1,
        num_groups=min(4, workload.num_groups),
        max_twist=0.0, num_inners=20, inner_tolerance=1e-10,
        boundary=BoundaryCondition(kind="reflective"),
        driver="k_eigenvalue", k_tolerance=1e-8, max_power_iters=50,
    )
    telemetry = Telemetry()
    t0 = time.perf_counter()
    result = run(spec, telemetry=telemetry)
    seconds = time.perf_counter() - t0
    iterations = int(telemetry.counters.get("power_iterations", 0))
    return {
        "power": {
            "seconds": seconds,
            "power_iterations": iterations,
            "seconds_per_iteration": seconds / iterations if iterations else 0.0,
            "k_effective": float(result.k_effective),
            "dominance_ratio": float(result.dominance_ratio),
        }
    }


@register_benchmark("driver-time-dependent", tags=("drivers",), aliases=("transient",))
def bench_driver_time_dependent(workload: BenchWorkload) -> dict[str, dict]:
    """Backward-Euler stepping cost per engine: the factor-cache-reuse win.

    The time-absorption term is folded into ``sigma_t`` once, so the
    ``prefactorized`` engine's LU factors are built on the first step and
    every later step reuses them -- visible in the cache-hit counters and
    the per-step seconds against the ``reference`` engine.
    """
    n = 2 if workload.smoke else min(workload.n, 3)
    n_steps = 4 if workload.smoke else 8
    base = ProblemSpec(
        nx=n, ny=n, nz=n, order=1, angles_per_octant=1,
        num_groups=min(4, workload.num_groups),
        max_twist=0.0, num_inners=5,
        boundary=BoundaryCondition(kind="reflective"),
        driver="time_dependent", dt=0.1, n_steps=n_steps, initial_flux_value=1.0,
    )
    samples = {}
    for engine in ("reference", "prefactorized"):
        telemetry = Telemetry()
        t0 = time.perf_counter()
        run(base.with_(engine=engine), telemetry=telemetry)
        seconds = time.perf_counter() - t0
        steps = int(telemetry.counters.get("time_steps", 0))
        samples[engine] = {
            "seconds": seconds,
            "time_steps": steps,
            "seconds_per_step": seconds / steps if steps else 0.0,
            "factor_cache_hits": int(telemetry.counters.get("factor_cache_hits", 0)),
            "factor_cache_misses": int(telemetry.counters.get("factor_cache_misses", 0)),
        }
    return samples


# ---------------------------------------------------------------------- study
@register_benchmark("table2-solvers", tags=("study",), aliases=("table2",))
def bench_table2_solvers(workload: BenchWorkload) -> dict[str, dict]:
    """The Table II order x solver grid as one declarative study."""
    n = min(5, max(3, workload.n // 2))
    base = ProblemSpec(
        nx=n, ny=n, nz=n,
        angles_per_octant=workload.angles_per_octant,
        num_groups=min(4, workload.num_groups),
        max_twist=0.001, num_inners=2, num_outers=1,
    )
    study = Study.grid(
        base, name="table2", order=list(_orders(workload)), solver=list(available_solvers())
    )
    result = run_study(study, backend="serial")
    samples = {}
    for study_run in result:
        label = f"order{study_run.axes['order']}-{study_run.axes['solver']}"
        timings = study_run.result.timings
        samples[label] = {
            "seconds": timings.total_seconds,
            "solve_fraction": timings.solve_fraction,
            "systems_solved": timings.systems_solved,
        }
    return samples


@register_benchmark("study-backends", tags=("study",), aliases=("backends",))
def bench_study_backends(workload: BenchWorkload) -> dict[str, dict]:
    """The same order x engine grid through every campaign backend."""
    n = min(workload.n, 4)
    base = ProblemSpec(
        nx=n, ny=n, nz=n,
        angles_per_octant=workload.angles_per_octant,
        num_groups=min(4, workload.num_groups),
        max_twist=0.001, num_inners=2, num_outers=1,
    )
    study = Study.grid(
        base, name="backend-bench",
        order=[1] if workload.smoke else [1, 2],
        engine=["vectorized", "prefactorized"],
    )
    samples = {}
    for backend in available_backends():
        if backend == "distributed":
            # Spawns worker subprocesses and polls a spool -- measured by the
            # dedicated distributed-overhead case, not this in-process sweep.
            continue
        t0 = time.perf_counter()
        result = run_study(study, backend=backend, jobs=workload.jobs)
        samples[backend] = {
            "seconds": time.perf_counter() - t0,
            "runs": len(result),
            "jobs": workload.jobs,
            "mean_flux": [r.result.mean_flux for r in result],
        }
    return samples


@register_benchmark(
    "distributed-overhead", tags=("study", "distributed"), aliases=("spool",)
)
def bench_distributed_overhead(workload: BenchWorkload) -> dict[str, dict]:
    """Spool-protocol cost: the same small study serial vs distributed.

    The interesting numbers are the *deltas*: ``overhead_seconds`` (spool
    publish/claim/poll plus worker spawn, amortised over the campaign) and
    the mean per-point ``queue_wait_seconds`` the done markers report.
    """
    from ..campaign.distributed import DistributedBackend

    n = min(workload.n, 4)
    base = ProblemSpec(
        nx=n, ny=n, nz=n,
        angles_per_octant=workload.angles_per_octant,
        num_groups=min(2, workload.num_groups),
        max_twist=0.001, num_inners=2, num_outers=1,
    )
    study = Study.grid(
        base, name="spool-bench",
        order=[1] if workload.smoke else [1, 2],
        engine=["vectorized", "prefactorized"],
    )
    t0 = time.perf_counter()
    run_study(study, backend="serial")
    serial_seconds = time.perf_counter() - t0

    backend = DistributedBackend(workers=workload.jobs or 2)
    t0 = time.perf_counter()
    result = run_study(study, backend=backend)
    distributed_seconds = time.perf_counter() - t0
    waits = [r.meta.get("queue_wait_seconds", 0.0) for r in result if r.meta]
    return {
        "serial": {"seconds": serial_seconds, "runs": len(study.runs())},
        "distributed": {
            "seconds": distributed_seconds,
            "runs": len(result),
            "workers": workload.jobs or 2,
            "overhead_seconds": distributed_seconds - serial_seconds,
            "mean_queue_wait_seconds": (sum(waits) / len(waits)) if waits else 0.0,
        },
    }
