"""Measured-vs-modelled overlay: ``unsnap bench --against-model``.

The perfmodel (:mod:`repro.perfmodel`) predicts the assemble/solve time of
the sweep from a roofline-style node model -- that is how the paper-scale
Figure 3/4 series are reproduced.  This module closes the loop the other
way: it *measures* the same repeated-sweep workload per engine and overlays
the measurement on the model's prediction for the identical problem, so the
report carries an explicit model error instead of two disconnected numbers.

Under CPython the measured times sit orders of magnitude above the modelled
C/Fortran roofline -- the interesting quantity is the *ratio* (the
interpreter/dispatch overhead factor) and how it shrinks as engines get
closer to pure BLAS, which is exactly what the per-engine ``model_ratio``
metric records.
"""

from __future__ import annotations

import time

from ..config import ProblemSpec
from ..engines import available_engines
from ..perfmodel.roofline import arithmetic_intensity, is_memory_bound
from ..perfmodel.schemes import paper_schemes
from ..perfmodel.simulator import SweepPerformanceModel
from ..perfmodel.workload import SweepWorkload
from .registry import register_benchmark
from .workload import BenchWorkload

__all__ = ["MODEL_CASE"]

#: Registry name of the overlay case (tag ``model`` keeps it out of default
#: suite runs; ``--against-model`` or an explicit filter pulls it in).
MODEL_CASE = "sweep-vs-model"


@register_benchmark(MODEL_CASE, tags=("model",), aliases=("against-model",))
def bench_sweep_vs_model(workload: BenchWorkload) -> dict[str, dict]:
    """Measured repeated sweeps per engine vs the roofline model prediction."""
    from .cases import build_sweep_executor

    spec = ProblemSpec(
        nx=workload.n, ny=workload.n, nz=workload.n,
        order=1,
        angles_per_octant=workload.angles_per_octant,
        num_groups=workload.num_groups,
        max_twist=0.001,
        num_inners=workload.sweeps,
        num_outers=1,
    )
    model = SweepPerformanceModel(spec)
    schemes = paper_schemes()
    best = model.best_scheme(schemes, threads=1)
    predicted = model.sweep_time(best, threads=1)
    kernel = SweepWorkload(order=spec.order, num_groups=spec.num_groups)

    samples: dict[str, dict] = {}
    for engine in available_engines():
        executor, source = build_sweep_executor(
            workload.n, workload.angles_per_octant, workload.num_groups, engine=engine
        )
        t0 = time.perf_counter()
        for _ in range(workload.sweeps):
            executor.sweep(source)
        measured = time.perf_counter() - t0
        samples[engine] = {
            "seconds": measured,
            "model_seconds": predicted.seconds,
            "model_scheme": best.label,
            "model_bound": predicted.bound,
            # The model error: how far above the roofline prediction the
            # CPython measurement sits (>= 1; smaller is closer to the model).
            "model_ratio": measured / predicted.seconds if predicted.seconds > 0 else 0.0,
            "arithmetic_intensity": arithmetic_intensity(kernel),
            "memory_bound": is_memory_bound(model.machine, kernel, threads=1),
        }
    return samples
