"""The benchmark workload and its shrink policy.

Every registered benchmark case derives its problem sizes from one
:class:`BenchWorkload`, so the whole suite shrinks or grows coherently.
Two size tiers exist:

* the **full** tier (the committed ``BENCH_*.json`` trajectory and the
  nightly run) defaults to the 8^3 / 16-angle / 8-group workload the engine
  speedup numbers have always been quoted on; and
* the **smoke** tier (``unsnap bench --smoke``, the per-PR CI job) shrinks
  every axis so the entire suite completes in well under two minutes.

Both tiers remain overridable through the ``UNSNAP_BENCH_*`` environment
variables that the old ``benchmarks/bench_*.py`` scripts introduced -- the
same knobs, now applied uniformly to every case.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["BenchWorkload", "ENV_KNOBS"]

#: ``UNSNAP_BENCH_*`` environment variable -> :class:`BenchWorkload` field.
ENV_KNOBS = {
    "UNSNAP_BENCH_N": "n",
    "UNSNAP_BENCH_NANG": "angles_per_octant",
    "UNSNAP_BENCH_GROUPS": "num_groups",
    "UNSNAP_BENCH_SWEEPS": "sweeps",
    "UNSNAP_BENCH_JOBS": "jobs",
    "UNSNAP_BENCH_REPEATS": "repeats",
    "UNSNAP_BENCH_WARMUP": "warmup",
}


@dataclass(frozen=True)
class BenchWorkload:
    """Problem sizes and measurement policy shared by all benchmark cases.

    Attributes
    ----------
    n:
        Cells per axis of the main cubic grid (cases needing smaller grids
        derive from it, e.g. the cubic-order thread-scaling case).
    angles_per_octant, num_groups:
        Angular and energy resolution of the main workload.
    sweeps:
        Repeated sweeps per engine measurement (exposes factor-cache reuse).
    jobs:
        Worker cap for the concurrent study backends.
    repeats, warmup:
        Measurement policy: every case is invoked ``warmup + repeats`` times
        and the first ``warmup`` invocations are discarded from the
        statistics.
    smoke:
        Whether this is the shrunken smoke tier (recorded in the report).
    """

    n: int = 8
    angles_per_octant: int = 2
    num_groups: int = 8
    sweeps: int = 3
    jobs: int = 4
    repeats: int = 2
    warmup: int = 1
    smoke: bool = False

    def __post_init__(self) -> None:
        if min(self.n, self.angles_per_octant, self.num_groups, self.sweeps) < 1:
            raise ValueError("workload sizes must be >= 1")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.repeats < 1 or self.warmup < 0:
            raise ValueError("need repeats >= 1 and warmup >= 0")

    #: Smoke-tier defaults: every case in seconds, the whole suite well
    #: under the two-minute budget.
    _SMOKE = dict(n=3, angles_per_octant=1, num_groups=2, sweeps=2, jobs=2,
                  repeats=1, warmup=0)

    @classmethod
    def from_env(cls, smoke: bool = False, env=None) -> "BenchWorkload":
        """Build a workload from the tier defaults plus ``UNSNAP_BENCH_*``.

        An explicitly-set environment knob overrides the tier default, so CI
        and local runs can shrink (or grow) any axis without code changes.
        """
        env = os.environ if env is None else env
        values = dict(cls._SMOKE) if smoke else {}
        for var, fieldname in ENV_KNOBS.items():
            raw = env.get(var)
            if raw is not None:
                values[fieldname] = int(raw)
        return cls(smoke=smoke, **values)

    def with_(self, **changes) -> "BenchWorkload":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-safe export (embedded in every ``unsnap-bench-v1`` report)."""
        return {
            "n": self.n,
            "angles_per_octant": self.angles_per_octant,
            "num_groups": self.num_groups,
            "sweeps": self.sweeps,
            "jobs": self.jobs,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "smoke": self.smoke,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchWorkload":
        return cls(**data)
