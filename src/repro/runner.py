"""The unified execution facade: ``repro.run(spec)``.

Callers used to branch manually between :class:`~repro.core.solver.
TransportSolver` (single rank) and :class:`~repro.parallel.block_jacobi.
BlockJacobiDriver` (multi-rank), which return differently-shaped results.
:func:`run` resolves the outer-loop *driver* (``mode`` / ``spec.driver``;
see :mod:`repro.drivers`), threads the sweep-engine and thread-count choices
through, and returns one :class:`RunResult` whatever the execution path --
scalar flux, iteration history, assemble/solve timing split, particle
balance, halo-traffic statistics, driver outputs (``k_effective``/
``k_history``, ``times``/``step_mean_flux``) and JSON-ready export.

This is the single entry point used by the ``unsnap`` CLI, the examples and
the benchmark harness::

    import repro

    result = repro.run(repro.ProblemSpec(nx=6, ny=6, nz=6), engine="vectorized")
    print(result.summary())
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from .config import ProblemSpec
from .core.assembly import AssemblyTimings
from .core.balance import BalanceReport
from .core.flux import AngularFluxBank
from .core.iteration import IterationHistory
from .engines.registry import get_engine
from .telemetry import Telemetry, active

__all__ = ["run", "RunResult"]


@dataclass
class RunResult:
    """Unified outcome of a single-rank or block-Jacobi transport solve.

    Attributes
    ----------
    scalar_flux:
        ``(E, G, N)`` nodal scalar flux (global cell ordering).
    cell_average_flux:
        ``(E, G)`` volume-averaged scalar flux per cell.
    leakage:
        ``(G,)`` net domain-boundary leakage of the final sweep.
    history:
        Inner/outer iteration record (for block Jacobi, the globally-reduced
        convergence history).
    timings:
        Assemble/solve wall-clock split accumulated over all sweeps (and, for
        block Jacobi, over all ranks).
    balance:
        Particle-balance diagnostics of the final iterate.
    setup_seconds, solve_seconds:
        Wall-clock time spent building the problem and running the iteration
        loop; :attr:`wall_seconds` is their sum.
    num_ranks, messages, bytes_exchanged:
        Execution-path and halo-exchange statistics (1 / 0 / 0 on a single
        rank).
    engine, solver:
        The registry names of the sweep engine and local solver that ran.
    spec:
        The problem specification that was solved.
    angular_flux:
        Full angular flux of the final sweep (single rank with
        ``store_angular_flux=True`` only).

    Results loaded back from a flux-less export (:meth:`from_dict` on a
    :meth:`to_dict(include_flux=False) <to_dict>` payload) carry ``None``
    flux arrays; the summary falls back to the spec for the problem sizes
    and to the exported value for :attr:`mean_flux`.
    """

    scalar_flux: np.ndarray | None
    cell_average_flux: np.ndarray | None
    leakage: np.ndarray
    history: IterationHistory
    timings: AssemblyTimings
    balance: BalanceReport
    setup_seconds: float
    solve_seconds: float
    num_ranks: int
    messages: int
    bytes_exchanged: int
    engine: str
    solver: str
    spec: ProblemSpec | None = None
    angular_flux: AngularFluxBank | None = None
    #: Exported mean flux, kept by :meth:`from_dict` when the flux arrays
    #: themselves were not embedded in the payload.
    loaded_mean_flux: float | None = field(default=None, repr=False)
    #: Phase-level telemetry of the run (``run(spec, telemetry=...)``);
    #: ``None`` for uninstrumented runs, so exports stay unchanged unless
    #: telemetry was requested.
    telemetry: Telemetry | None = field(default=None, repr=False)
    #: ``k_eigenvalue`` driver outputs: the converged multiplication factor,
    #: the per-power-iteration eigenvalue estimates and the dominance-ratio
    #: estimate (``None`` when fewer than three iterations ran).  All
    #: ``None`` for the other drivers, so their exports stay key-stable.
    k_effective: float | None = None
    k_history: list[float] | None = None
    dominance_ratio: float | None = None
    #: ``time_dependent`` driver outputs: the step end times and the
    #: volume-weighted mean flux per group at each step.  ``None`` for the
    #: other drivers.
    times: list[float] | None = None
    step_mean_flux: list[list[float]] | None = None
    #: Opt-in scalar-flux snapshots (``spec.snapshot_every``); like the
    #: angular flux bank they are never serialised.
    flux_snapshots: list[np.ndarray] | None = field(default=None, repr=False)

    # ------------------------------------------------------------- derived
    @property
    def wall_seconds(self) -> float:
        """True wall-clock time: problem setup plus the iteration loop."""
        return self.setup_seconds + self.solve_seconds

    @property
    def total_inners(self) -> int:
        return self.history.total_inners

    @property
    def inner_errors(self) -> list[float]:
        return self.history.inner_errors

    @property
    def mean_flux(self) -> float:
        if self.scalar_flux is None:
            if self.loaded_mean_flux is None:
                raise ValueError("result carries neither flux arrays nor an exported mean")
            return self.loaded_mean_flux
        return float(self.scalar_flux.mean())

    def _problem_shape(self) -> tuple[int, int, int]:
        """``(cells, groups, nodes)`` from the flux, or the spec for flux-less loads."""
        if self.scalar_flux is not None:
            return tuple(int(n) for n in self.scalar_flux.shape)
        if self.spec is None:
            raise ValueError("result carries neither flux arrays nor a spec")
        return (self.spec.num_cells, self.spec.num_groups, self.spec.nodes_per_element)

    # ------------------------------------------------------------- export
    def summary(self) -> dict:
        """Compact dictionary used by reports and the CLI.

        Instrumented runs additionally carry ``phase_seconds`` -- the flat
        per-phase wall-clock breakdown of the telemetry (dotted nesting
        paths) -- so reports can say where the time went; uninstrumented
        runs omit the key entirely (goldens and store records stay stable).
        """
        cells, groups, nodes = self._problem_shape()
        data = {
            "engine": self.engine,
            "solver": self.solver,
            "ranks": self.num_ranks,
            "cells": cells,
            "groups": groups,
            "nodes_per_element": nodes,
            "total_inners": self.history.total_inners,
            "outers": self.history.num_outers,
            "converged": self.history.converged,
            "assembly_seconds": self.timings.assembly_seconds,
            "solve_seconds": self.timings.solve_seconds,
            "solve_fraction": self.timings.solve_fraction,
            "systems_solved": self.timings.systems_solved,
            "balance_residual": self.balance.relative_residual(),
            "mean_flux": self.mean_flux,
            "setup_seconds": self.setup_seconds,
            "solve_wall_seconds": self.solve_seconds,
            "wall_seconds": self.wall_seconds,
            "halo_messages": self.messages,
            "halo_bytes": self.bytes_exchanged,
        }
        if self.telemetry is not None:
            data["phase_seconds"] = {
                path: self.telemetry.phase_seconds[path]
                for path in sorted(self.telemetry.phase_seconds)
            }
        if self.k_effective is not None:
            data["k_effective"] = self.k_effective
            data["power_iterations"] = len(self.k_history or [])
            if self.dominance_ratio is not None:
                data["dominance_ratio"] = self.dominance_ratio
        if self.times is not None:
            data["time_steps"] = len(self.times)
            data["t_end"] = self.times[-1] if self.times else 0.0
        return data

    def to_dict(self, include_flux: bool = False) -> dict:
        """JSON-safe dictionary: the summary plus histories and leakage.

        Parameters
        ----------
        include_flux:
            Also embed the (potentially large) nodal and cell-average flux
            arrays as nested lists.
        """
        data = self.summary()
        data["inner_errors"] = [float(e) for e in self.history.inner_errors]
        data["outer_errors"] = [float(e) for e in self.history.outer_errors]
        data["inners_per_outer"] = [int(n) for n in self.history.inners_per_outer]
        data["leakage"] = [float(x) for x in self.leakage]
        data["balance"] = {
            key: [float(x) for x in getattr(self.balance, key)]
            for key in ("emission", "absorption", "leakage", "scattering_in", "scattering_out")
        }
        data["spec"] = self.spec.to_dict() if self.spec is not None else None
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry.to_dict()
        if self.k_history is not None:
            data["k_history"] = [float(k) for k in self.k_history]
        if self.times is not None:
            data["times"] = [float(t) for t in self.times]
        if self.step_mean_flux is not None:
            data["step_mean_flux"] = [
                [float(x) for x in step] for step in self.step_mean_flux
            ]
        if include_flux:
            if self.scalar_flux is None:
                raise ValueError("include_flux=True but this result carries no flux arrays")
            data["scalar_flux"] = self.scalar_flux.tolist()
            data["cell_average_flux"] = self.cell_average_flux.tolist()
        return data

    def to_json(self, indent: int | None = 2, include_flux: bool = False) -> str:
        """Serialise :meth:`to_dict` to a JSON string."""
        return json.dumps(self.to_dict(include_flux=include_flux), indent=indent)

    # ------------------------------------------------------------- import
    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output.

        The numeric payload round-trips bit for bit (JSON serialises doubles
        with the shortest exact representation), so a result exported with
        ``include_flux=True``, stored and reloaded compares equal array for
        array.  The angular flux bank is never exported, so it never
        survives a round trip; flux-less payloads load with ``None`` flux
        arrays (see the class docstring).
        """
        history = IterationHistory(
            inner_errors=[float(e) for e in data.get("inner_errors", [])],
            outer_errors=[float(e) for e in data.get("outer_errors", [])],
            inners_per_outer=[int(n) for n in data.get("inners_per_outer", [])],
            converged=bool(data.get("converged", False)),
        )
        timings = AssemblyTimings(
            assembly_seconds=float(data["assembly_seconds"]),
            solve_seconds=float(data["solve_seconds"]),
            systems_solved=int(data["systems_solved"]),
        )
        balance_data = data["balance"]
        balance = BalanceReport(
            **{key: np.asarray(values, dtype=float) for key, values in balance_data.items()}
        )
        spec = ProblemSpec.from_dict(data["spec"]) if data.get("spec") else None
        has_flux = "scalar_flux" in data
        return cls(
            scalar_flux=np.asarray(data["scalar_flux"], dtype=float) if has_flux else None,
            cell_average_flux=(
                np.asarray(data["cell_average_flux"], dtype=float) if has_flux else None
            ),
            leakage=np.asarray(data["leakage"], dtype=float),
            history=history,
            timings=timings,
            balance=balance,
            setup_seconds=float(data["setup_seconds"]),
            solve_seconds=float(data["solve_wall_seconds"]),
            num_ranks=int(data["ranks"]),
            messages=int(data["halo_messages"]),
            bytes_exchanged=int(data["halo_bytes"]),
            engine=str(data["engine"]),
            solver=str(data["solver"]),
            spec=spec,
            loaded_mean_flux=float(data["mean_flux"]) if "mean_flux" in data else None,
            telemetry=(
                Telemetry.from_dict(data["telemetry"]) if "telemetry" in data else None
            ),
            k_effective=float(data["k_effective"]) if "k_effective" in data else None,
            k_history=(
                [float(k) for k in data["k_history"]] if "k_history" in data else None
            ),
            dominance_ratio=(
                float(data["dominance_ratio"]) if "dominance_ratio" in data else None
            ),
            times=[float(t) for t in data["times"]] if "times" in data else None,
            step_mean_flux=(
                [[float(x) for x in step] for step in data["step_mean_flux"]]
                if "step_mean_flux" in data
                else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Rebuild a result from a :meth:`to_json` string."""
        return cls.from_dict(json.loads(text))


def run(
    spec: ProblemSpec,
    *,
    mode: str | None = None,
    engine=None,
    num_threads: int = 1,
    octant_parallel: bool | None = None,
    store_angular_flux: bool = False,
    materials=None,
    fixed_source=None,
    quadrature=None,
    angular_source=None,
    telemetry: Telemetry | bool | None = None,
    factor_cache_budget_bytes: int | None = None,
) -> RunResult:
    """Solve a transport problem and return a unified :class:`RunResult`.

    Dispatches to the outer-loop *driver* named by ``mode`` (default
    ``spec.driver``): the ``fixed_source`` driver runs the steady iteration
    on the single-rank :class:`~repro.core.solver.TransportSolver` or the
    multi-rank :class:`~repro.parallel.block_jacobi.BlockJacobiDriver`
    depending on ``spec.npex * spec.npey``; ``k_eigenvalue`` and
    ``time_dependent`` wrap the same sweep core in power iteration and
    backward-Euler stepping (see :mod:`repro.drivers`).

    Parameters
    ----------
    spec:
        The problem specification (including ``npex``/``npey``, the solver,
        the default engine and the default driver).
    mode:
        Driver override: a :func:`repro.drivers.register_driver`-ed name
        (``"fixed_source"``, ``"k_eigenvalue"``, ``"time_dependent"`` or an
        alias).  Defaults to ``spec.driver``.
    engine:
        Sweep-engine override: a registry name (``"reference"``,
        ``"vectorized"``, ``"prefactorized"``, or any
        :func:`repro.engines.register_engine`-ed name) or an engine
        instance.  Defaults to ``spec.engine``.
    num_threads:
        Worker threads: whole octants with ``octant_parallel``, otherwise
        the ``reference`` engine's bucket loop.
    octant_parallel:
        Sweep the 8 octants concurrently with a deterministic reduction
        order; defaults to ``spec.octant_parallel``.
    store_angular_flux:
        Keep the full angular flux of the final sweep (single rank only).
    materials, fixed_source, quadrature:
        Optional overrides of the SNAP option-1 defaults, in global cell
        ordering.
    angular_source:
        Optional ``(A, E, G, N)`` per-ordinate source added to every sweep
        on top of the isotropic fixed + scattering source (single rank
        only).  This is the method-of-manufactured-solutions hook used by
        :mod:`repro.verify` -- see :meth:`SweepExecutor.sweep
        <repro.core.sweep.SweepExecutor.sweep>`.
    telemetry:
        Phase-level instrumentation (:mod:`repro.telemetry`).  Pass ``True``
        to create a fresh :class:`~repro.telemetry.Telemetry`, or an existing
        instance to accumulate across runs; the instrument comes back on
        :attr:`RunResult.telemetry` with top-level ``setup``/``solve``
        phases, the nested iteration/sweep breakdown
        (``solve.source``/``solve.sweep``/``solve.convergence``, plus
        ``solve.halo`` for multi-rank runs) and the sweep counters (local
        solves, factor-cache hits/misses, halo traffic, octant-pool
        occupancy).  The default ``None`` runs fully uninstrumented -- the
        hot paths perform no telemetry work at all -- and a *disabled*
        instrument is treated exactly like ``None``: nothing is recorded,
        the result carries no telemetry and the exports stay key-stable.
    factor_cache_budget_bytes:
        Override of ``spec.factor_cache_budget_bytes`` (the engine
        factor-cache byte budget; 0 = unbounded).  Applied by rewriting the
        spec, so drivers, multi-rank executors and store run keys all see
        the effective value.
    """
    if telemetry is True:
        telemetry = Telemetry()
    elif telemetry is False:
        telemetry = None
    tel = active(telemetry)
    if (
        factor_cache_budget_bytes is not None
        and int(factor_cache_budget_bytes) != spec.factor_cache_budget_bytes
    ):
        spec = spec.with_(factor_cache_budget_bytes=int(factor_cache_budget_bytes))
    engine_obj = get_engine(engine if engine is not None else spec.engine)
    # Duck-typed instances passed straight through get_engine may not carry a
    # registry name; fall back to the class name for reporting.
    engine_name = getattr(engine_obj, "name", type(engine_obj).__name__.lower())

    # Imported lazily: the driver modules import this module for RunResult.
    from .drivers import get_driver

    driver = get_driver(mode if mode is not None else spec.driver)
    return driver(
        spec,
        engine_obj=engine_obj,
        engine_name=engine_name,
        num_threads=num_threads,
        octant_parallel=octant_parallel,
        store_angular_flux=store_angular_flux,
        materials=materials,
        fixed_source=fixed_source,
        quadrature=quadrature,
        angular_source=angular_source,
        telemetry=tel,
    )
