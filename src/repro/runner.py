"""The unified execution facade: ``repro.run(spec)``.

Callers used to branch manually between :class:`~repro.core.solver.
TransportSolver` (single rank) and :class:`~repro.parallel.block_jacobi.
BlockJacobiDriver` (multi-rank), which return differently-shaped results.
:func:`run` dispatches on ``spec.npex * spec.npey``, threads the sweep-engine
and thread-count choices through, and returns one :class:`RunResult` whatever
the execution path -- scalar flux, iteration history, assemble/solve timing
split, particle balance, halo-traffic statistics and JSON-ready export.

This is the single entry point used by the ``unsnap`` CLI, the examples and
the benchmark harness::

    import repro

    result = repro.run(repro.ProblemSpec(nx=6, ny=6, nz=6), engine="vectorized")
    print(result.summary())
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

import numpy as np

from .config import ProblemSpec
from .core.assembly import AssemblyTimings
from .core.balance import BalanceReport
from .core.flux import AngularFluxBank
from .core.iteration import IterationHistory
from .core.solver import TransportSolver
from .engines.registry import get_engine
from .parallel.block_jacobi import BlockJacobiDriver

__all__ = ["run", "RunResult"]


@dataclass
class RunResult:
    """Unified outcome of a single-rank or block-Jacobi transport solve.

    Attributes
    ----------
    scalar_flux:
        ``(E, G, N)`` nodal scalar flux (global cell ordering).
    cell_average_flux:
        ``(E, G)`` volume-averaged scalar flux per cell.
    leakage:
        ``(G,)`` net domain-boundary leakage of the final sweep.
    history:
        Inner/outer iteration record (for block Jacobi, the globally-reduced
        convergence history).
    timings:
        Assemble/solve wall-clock split accumulated over all sweeps (and, for
        block Jacobi, over all ranks).
    balance:
        Particle-balance diagnostics of the final iterate.
    setup_seconds, solve_seconds:
        Wall-clock time spent building the problem and running the iteration
        loop; :attr:`wall_seconds` is their sum.
    num_ranks, messages, bytes_exchanged:
        Execution-path and halo-exchange statistics (1 / 0 / 0 on a single
        rank).
    engine, solver:
        The registry names of the sweep engine and local solver that ran.
    spec:
        The problem specification that was solved.
    angular_flux:
        Full angular flux of the final sweep (single rank with
        ``store_angular_flux=True`` only).
    """

    scalar_flux: np.ndarray
    cell_average_flux: np.ndarray
    leakage: np.ndarray
    history: IterationHistory
    timings: AssemblyTimings
    balance: BalanceReport
    setup_seconds: float
    solve_seconds: float
    num_ranks: int
    messages: int
    bytes_exchanged: int
    engine: str
    solver: str
    spec: ProblemSpec | None = None
    angular_flux: AngularFluxBank | None = None

    # ------------------------------------------------------------- derived
    @property
    def wall_seconds(self) -> float:
        """True wall-clock time: problem setup plus the iteration loop."""
        return self.setup_seconds + self.solve_seconds

    @property
    def total_inners(self) -> int:
        return self.history.total_inners

    @property
    def inner_errors(self) -> list[float]:
        return self.history.inner_errors

    @property
    def mean_flux(self) -> float:
        return float(self.scalar_flux.mean())

    # ------------------------------------------------------------- export
    def summary(self) -> dict:
        """Compact dictionary used by reports and the CLI."""
        return {
            "engine": self.engine,
            "solver": self.solver,
            "ranks": self.num_ranks,
            "cells": int(self.scalar_flux.shape[0]),
            "groups": int(self.scalar_flux.shape[1]),
            "nodes_per_element": int(self.scalar_flux.shape[2]),
            "total_inners": self.history.total_inners,
            "outers": self.history.num_outers,
            "converged": self.history.converged,
            "assembly_seconds": self.timings.assembly_seconds,
            "solve_seconds": self.timings.solve_seconds,
            "solve_fraction": self.timings.solve_fraction,
            "systems_solved": self.timings.systems_solved,
            "balance_residual": self.balance.relative_residual(),
            "mean_flux": self.mean_flux,
            "setup_seconds": self.setup_seconds,
            "solve_wall_seconds": self.solve_seconds,
            "wall_seconds": self.wall_seconds,
            "halo_messages": self.messages,
            "halo_bytes": self.bytes_exchanged,
        }

    def to_dict(self, include_flux: bool = False) -> dict:
        """JSON-safe dictionary: the summary plus histories and leakage.

        Parameters
        ----------
        include_flux:
            Also embed the (potentially large) nodal and cell-average flux
            arrays as nested lists.
        """
        data = self.summary()
        data["inner_errors"] = [float(e) for e in self.history.inner_errors]
        data["outer_errors"] = [float(e) for e in self.history.outer_errors]
        data["inners_per_outer"] = [int(n) for n in self.history.inners_per_outer]
        data["leakage"] = [float(x) for x in self.leakage]
        if include_flux:
            data["scalar_flux"] = self.scalar_flux.tolist()
            data["cell_average_flux"] = self.cell_average_flux.tolist()
        return data

    def to_json(self, indent: int | None = 2, include_flux: bool = False) -> str:
        """Serialise :meth:`to_dict` to a JSON string."""
        return json.dumps(self.to_dict(include_flux=include_flux), indent=indent)


def run(
    spec: ProblemSpec,
    *,
    engine=None,
    num_threads: int = 1,
    octant_parallel: bool | None = None,
    store_angular_flux: bool = False,
    materials=None,
    fixed_source=None,
    quadrature=None,
) -> RunResult:
    """Solve a transport problem and return a unified :class:`RunResult`.

    Dispatches to the single-rank :class:`~repro.core.solver.TransportSolver`
    when ``spec.npex * spec.npey == 1`` and to the multi-rank
    :class:`~repro.parallel.block_jacobi.BlockJacobiDriver` otherwise.

    Parameters
    ----------
    spec:
        The problem specification (including ``npex``/``npey``, the solver
        and the default engine).
    engine:
        Sweep-engine override: a registry name (``"reference"``,
        ``"vectorized"``, ``"prefactorized"``, or any
        :func:`repro.engines.register_engine`-ed name) or an engine
        instance.  Defaults to ``spec.engine``.
    num_threads:
        Worker threads: whole octants with ``octant_parallel``, otherwise
        the ``reference`` engine's bucket loop.
    octant_parallel:
        Sweep the 8 octants concurrently with a deterministic reduction
        order; defaults to ``spec.octant_parallel``.
    store_angular_flux:
        Keep the full angular flux of the final sweep (single rank only).
    materials, fixed_source, quadrature:
        Optional overrides of the SNAP option-1 defaults, in global cell
        ordering.
    """
    engine_obj = get_engine(engine if engine is not None else spec.engine)
    # Duck-typed instances passed straight through get_engine may not carry a
    # registry name; fall back to the class name for reporting.
    engine_name = getattr(engine_obj, "name", type(engine_obj).__name__.lower())

    if spec.npex * spec.npey > 1:
        if store_angular_flux:
            raise ValueError("store_angular_flux is not supported for multi-rank runs")
        t0 = time.perf_counter()
        driver = BlockJacobiDriver(
            spec,
            materials=materials,
            fixed_source=fixed_source,
            quadrature=quadrature,
            engine=engine_obj,
            num_threads=num_threads,
            octant_parallel=octant_parallel,
        )
        setup_seconds = time.perf_counter() - t0
        result = driver.solve()
        history = IterationHistory(
            inner_errors=result.inner_errors,
            outer_errors=result.outer_errors,
            inners_per_outer=result.inners_per_outer,
            converged=bool(
                spec.outer_tolerance > 0.0
                and result.outer_errors
                and result.outer_errors[-1] <= spec.outer_tolerance
            ),
        )
        return RunResult(
            scalar_flux=result.scalar_flux,
            cell_average_flux=result.cell_average_flux,
            leakage=result.leakage,
            history=history,
            timings=result.timings,
            balance=result.balance,
            setup_seconds=setup_seconds,
            solve_seconds=result.wall_seconds,
            num_ranks=result.num_ranks,
            messages=result.messages,
            bytes_exchanged=result.bytes_exchanged,
            engine=engine_name,
            solver=spec.solver,
            spec=spec,
        )

    solver = TransportSolver(
        spec,
        materials=materials,
        fixed_source=fixed_source,
        quadrature=quadrature,
        engine=engine_obj,
        num_threads=num_threads,
        octant_parallel=octant_parallel,
        store_angular_flux=store_angular_flux,
    )
    result = solver.solve()
    return RunResult(
        scalar_flux=result.scalar_flux,
        cell_average_flux=result.cell_average_flux,
        leakage=result.leakage,
        history=result.history,
        timings=result.timings,
        balance=result.balance,
        setup_seconds=result.setup_seconds,
        solve_seconds=result.solve_seconds,
        num_ranks=1,
        messages=0,
        bytes_exchanged=0,
        engine=engine_name,
        solver=spec.solver,
        spec=spec,
        angular_flux=result.angular_flux,
    )
