"""Problem specification and runtime options.

A :class:`ProblemSpec` captures everything UnSNAP reads from its input deck:
the SNAP structured grid the unstructured mesh is derived from, the mesh
twist, the finite element order, the angular and energy resolution, the
artificial material/source options, the iteration limits and the local solver
choice.  The paper's two experiment configurations are provided as ready-made
constructors (:func:`ProblemSpec.paper_figure3_4` and
:func:`ProblemSpec.paper_table2`).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, replace

__all__ = ["ProblemSpec", "BoundaryCondition"]

#: Fields added after the canonical-serialisation contract froze (PR 8's
#: driver subsystem).  They are dropped from :meth:`ProblemSpec.to_dict`
#: while equal to their default so older specs serialise byte-identically;
#: :meth:`ProblemSpec.from_dict` fills absent fields with the same defaults.
_ELIDED_DEFAULTS = (
    ("driver", "fixed_source"),
    ("k_tolerance", 1e-6),
    ("max_power_iters", 50),
    ("dt", 0.1),
    ("n_steps", 10),
    ("t_end", 0.0),
    ("initial_flux_value", 0.0),
    ("snapshot_every", 0),
    ("factor_cache_budget_bytes", 0),
)


@dataclass(frozen=True)
class BoundaryCondition:
    """Boundary condition applied on all domain boundary faces.

    Attributes
    ----------
    kind:
        ``"vacuum"`` (no incoming flux, SNAP's default), ``"incident"``
        (a prescribed isotropic incoming angular flux) or ``"reflective"``
        (specular reflection on every boundary face; the incoming trace is
        the previous sweep's outgoing trace of the mirrored ordinate, lagged
        exactly like a block-Jacobi halo).
    incident_flux:
        The incoming angular flux value used when ``kind == "incident"``.
    """

    kind: str = "vacuum"
    incident_flux: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("vacuum", "incident", "reflective"):
            raise ValueError(f"unknown boundary condition kind {self.kind!r}")
        if self.kind != "incident" and self.incident_flux != 0.0:
            raise ValueError(
                f"{self.kind} boundaries cannot carry an incident flux"
            )

    def incoming_value(self) -> float:
        """The angular-flux value entering through a boundary inflow face."""
        return self.incident_flux if self.kind == "incident" else 0.0


@dataclass(frozen=True)
class ProblemSpec:
    """Full specification of an UnSNAP problem.

    Attributes
    ----------
    nx, ny, nz:
        SNAP structured grid the unstructured mesh is derived from.
    lx, ly, lz:
        Physical domain extents.
    max_twist, twist_axis:
        Mesh twist (radians) and twist axis, per the paper's new input option.
    order:
        Lagrange finite element order (1 = linear, 3 = cubic, ...).
    angles_per_octant:
        Number of discrete ordinates per octant (SNAP-style artificial set).
    num_groups:
        Number of energy groups.
    scattering_ratio:
        Fraction of the total cross section that is scattering (must be < 1).
    source_strength:
        Uniform volumetric fixed source strength ("source option 1" uses 1).
    num_inners, num_outers:
        Inner (within-group) and outer (group-coupling Jacobi) iteration
        counts; the paper runs a fixed 5 inners x 1 outer for timing.
    inner_tolerance, outer_tolerance:
        Convergence tolerances on the scalar-flux relative change; iteration
        stops early when reached (set to 0 to force the fixed iteration count
        as in the paper's timing runs).
    solver:
        Local solver name (``"ge"`` or ``"lapack"``).
    engine:
        Sweep engine name (``"reference"``, ``"vectorized"`` or
        ``"prefactorized"``, or any name registered through
        :func:`repro.engines.register_engine`).  Resolved at execution time
        so engines registered after the spec was built are still usable.
    octant_parallel:
        Sweep the 8 octants concurrently on a thread pool (the octants'
        wavefront buckets are independent); the pool size is the runtime
        ``num_threads`` and the reduction order is deterministic.
    boundary:
        Boundary condition on the domain boundary.
    npex, npey:
        KBA-style 2-D processor grid for the (simulated) MPI decomposition.
    driver:
        Outer-loop driver name (``"fixed_source"``, ``"k_eigenvalue"`` or
        ``"time_dependent"``, or any name registered through
        :func:`repro.drivers.register_driver`).  Resolved at execution time
        like ``engine``.
    k_tolerance, max_power_iters:
        Power-iteration controls for the ``k_eigenvalue`` driver: iteration
        stops when ``|k_m - k_{m-1}| <= k_tolerance`` or after
        ``max_power_iters`` iterations, whichever comes first.
    dt, n_steps, t_end:
        Backward-Euler controls for the ``time_dependent`` driver.  When
        ``t_end > 0`` it overrides ``n_steps`` as ``ceil(t_end / dt)``.
    initial_flux_value:
        Uniform initial scalar-flux value: the ``time_dependent`` driver's
        initial condition, and the ``k_eigenvalue`` driver's initial guess
        when non-zero.
    snapshot_every:
        Keep a scalar-flux snapshot every this many time steps (0 = none;
        snapshots live on ``RunResult.flux_snapshots`` and are never
        serialised).
    factor_cache_budget_bytes:
        Byte budget of the engine factor cache (0 = unbounded, the default).
        Caching engines (``prefactorized``, ``compiled``) keep their packed
        LU factors in LRU order and spill the oldest entries past the
        budget, recomputing them transparently on the next miss -- results
        are bit-for-bit identical to an unbudgeted run.
    """

    nx: int = 8
    ny: int = 8
    nz: int = 8
    lx: float = 1.0
    ly: float = 1.0
    lz: float = 1.0
    max_twist: float = 0.001
    twist_axis: str = "z"
    order: int = 1
    angles_per_octant: int = 4
    num_groups: int = 4
    scattering_ratio: float = 0.5
    source_strength: float = 1.0
    num_inners: int = 5
    num_outers: int = 1
    inner_tolerance: float = 0.0
    outer_tolerance: float = 0.0
    solver: str = "ge"
    engine: str = "reference"
    octant_parallel: bool = False
    boundary: BoundaryCondition = field(default_factory=BoundaryCondition)
    npex: int = 1
    npey: int = 1
    driver: str = "fixed_source"
    k_tolerance: float = 1e-6
    max_power_iters: int = 50
    dt: float = 0.1
    n_steps: int = 10
    t_end: float = 0.0
    initial_flux_value: float = 0.0
    snapshot_every: int = 0
    factor_cache_budget_bytes: int = 0

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("grid must have at least one cell per axis")
        if self.order < 1:
            raise ValueError("element order must be >= 1")
        if self.angles_per_octant < 1:
            raise ValueError("need at least one angle per octant")
        if self.num_groups < 1:
            raise ValueError("need at least one energy group")
        if not 0.0 <= self.scattering_ratio < 1.0:
            raise ValueError("scattering_ratio must be in [0, 1)")
        if self.num_inners < 1 or self.num_outers < 1:
            raise ValueError("iteration counts must be >= 1")
        if self.npex < 1 or self.npey < 1:
            raise ValueError("processor grid dimensions must be >= 1")
        if self.npex > self.nx or self.npey > self.ny:
            raise ValueError("processor grid cannot exceed the cell grid")
        if not self.driver:
            raise ValueError("driver name must be non-empty")
        if self.k_tolerance < 0.0:
            raise ValueError("k_tolerance must be >= 0")
        if self.max_power_iters < 1:
            raise ValueError("max_power_iters must be >= 1")
        if self.dt <= 0.0:
            raise ValueError("dt must be > 0")
        if self.n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if self.t_end < 0.0:
            raise ValueError("t_end must be >= 0")
        if self.initial_flux_value < 0.0:
            raise ValueError("initial_flux_value must be >= 0")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if self.factor_cache_budget_bytes < 0:
            raise ValueError("factor_cache_budget_bytes must be >= 0 (0 = unbudgeted)")

    # ------------------------------------------------------------- derived sizes
    @property
    def num_cells(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def num_angles(self) -> int:
        """Total ordinates over all 8 octants."""
        return 8 * self.angles_per_octant

    @property
    def nodes_per_element(self) -> int:
        return (self.order + 1) ** 3

    @property
    def num_unknowns(self) -> int:
        """Total angular-flux unknowns: cells x angles x groups x nodes."""
        return self.num_cells * self.num_angles * self.num_groups * self.nodes_per_element

    def angular_flux_bytes(self, dtype_bytes: int = 8) -> int:
        """Memory footprint of the full angular flux (the dominant array)."""
        return self.num_unknowns * dtype_bytes

    @property
    def num_time_steps(self) -> int:
        """Number of backward-Euler steps (``t_end`` overrides ``n_steps``)."""
        if self.t_end > 0.0:
            return max(1, int(math.ceil(self.t_end / self.dt - 1e-12)))
        return self.n_steps

    def with_(self, **changes) -> "ProblemSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # -------------------------------------------------------------- dict I/O
    def to_dict(self) -> dict:
        """JSON-safe dictionary of every field (nested boundary included).

        The campaign :class:`~repro.campaign.store.ResultStore` hashes this
        canonical form to key runs on disk; :meth:`from_dict` inverts it.
        Driver-era fields are elided while they hold their defaults so that
        pre-driver specs keep their exact canonical form (and therefore their
        run keys, store filenames and golden files).
        """
        data = asdict(self)
        for name, default in _ELIDED_DEFAULTS:
            if data[name] == default:
                del data[name]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProblemSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        values = dict(data)
        boundary = values.get("boundary")
        if isinstance(boundary, dict):
            values["boundary"] = BoundaryCondition(**boundary)
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(values) - known)
        if unknown:
            raise KeyError(
                f"unknown ProblemSpec fields {unknown}; valid fields: {sorted(known)}"
            )
        return cls(**values)

    # ------------------------------------------------------------ paper configs
    @classmethod
    def paper_figure3_4(cls, order: int = 1) -> "ProblemSpec":
        """The thread-scaling study configuration (Figures 3 and 4).

        16^3 elements, 36 angles per octant with isotropic scattering, 64
        energy groups with source and material option 1, linear (Fig. 3) or
        cubic (Fig. 4) elements, mesh twisting up to 0.001 rad, 5 inners and
        1 outer.
        """
        return cls(
            nx=16,
            ny=16,
            nz=16,
            order=order,
            angles_per_octant=36,
            num_groups=64,
            max_twist=0.001,
            num_inners=5,
            num_outers=1,
        )

    @classmethod
    def paper_table2(cls, order: int = 1, solver: str = "ge") -> "ProblemSpec":
        """The solver-comparison configuration (Table II).

        32^3 elements, 10 angles per octant, 16 energy groups, source and
        material option 1, twist up to 0.001 rad, 5 inners and 1 outer.
        """
        return cls(
            nx=32,
            ny=32,
            nz=32,
            order=order,
            angles_per_octant=10,
            num_groups=16,
            max_twist=0.001,
            num_inners=5,
            num_outers=1,
            solver=solver,
        )
