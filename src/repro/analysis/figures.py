"""Figure generators: the thread-scaling series of Figures 3 and 4 and the
block-Jacobi convergence study of Section III-A.

The paper-scale thread-scaling series come from the node performance model
(:mod:`repro.perfmodel`); their *measured* counterpart
(:func:`measured_thread_scaling_study`) executes the same shape of ensemble
-- a thread-count x engine grid -- through :func:`repro.run_study` on a
scaled-down problem, and :func:`measured_scaling_series` reshapes any study
result into a :class:`ScalingSeries`.  The block-Jacobi convergence series
is measured by running a rank-grid study on the same problem and recording
the iteration error histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..campaign import Study, StudyResult, run_study
from ..config import ProblemSpec
from ..perfmodel.machine import MachineModel, skylake_8176_node
from ..perfmodel.schemes import ThreadingScheme, paper_schemes
from ..perfmodel.simulator import SweepPerformanceModel

__all__ = [
    "ScalingSeries",
    "thread_scaling_series",
    "figure3_series",
    "figure4_series",
    "measured_thread_scaling_study",
    "measured_scaling_series",
    "block_jacobi_convergence_series",
    "PAPER_THREAD_COUNTS",
]

#: The thread counts of the paper's x-axis (1 to 56 physical cores).
PAPER_THREAD_COUNTS = (1, 2, 4, 8, 14, 28, 56)


@dataclass
class ScalingSeries:
    """Thread-scaling data for one figure.

    Attributes
    ----------
    thread_counts:
        The x-axis values.
    series:
        Mapping from scheme label to the list of predicted assemble/solve
        times (seconds), one per thread count.
    order:
        The element order of the figure (1 for Figure 3, 3 for Figure 4).
    """

    thread_counts: list[int]
    series: dict[str, list[float]] = field(default_factory=dict)
    order: int = 1

    def fastest_at(self, threads: int) -> str:
        """Label of the fastest scheme at a given thread count."""
        idx = self.thread_counts.index(threads)
        return min(self.series, key=lambda label: self.series[label][idx])

    def speedup(self, label: str) -> float:
        """Speedup of a scheme from 1 thread to the maximum thread count."""
        values = self.series[label]
        return values[0] / values[-1]


def thread_scaling_series(
    spec: ProblemSpec,
    schemes: list[ThreadingScheme] | None = None,
    thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS,
    machine: MachineModel | None = None,
) -> ScalingSeries:
    """Model-predicted thread-scaling series for an arbitrary problem."""
    schemes = paper_schemes() if schemes is None else schemes
    machine = skylake_8176_node() if machine is None else machine
    model = SweepPerformanceModel(spec, machine=machine)
    result = ScalingSeries(thread_counts=list(thread_counts), order=spec.order)
    for scheme in schemes:
        result.series[scheme.label] = [
            model.sweep_time(scheme, t).seconds for t in thread_counts
        ]
    return result


def figure3_series(
    thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS,
    machine: MachineModel | None = None,
) -> ScalingSeries:
    """Figure 3: thread scaling of the parallel sweep for **linear** elements."""
    return thread_scaling_series(
        ProblemSpec.paper_figure3_4(order=1), thread_counts=thread_counts, machine=machine
    )


def figure4_series(
    thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS,
    machine: MachineModel | None = None,
) -> ScalingSeries:
    """Figure 4: thread scaling of the parallel sweep for **cubic** elements."""
    return thread_scaling_series(
        ProblemSpec.paper_figure3_4(order=3), thread_counts=thread_counts, machine=machine
    )


def measured_thread_scaling_study(
    base_spec: ProblemSpec,
    thread_counts: tuple[int, ...] = (1, 2, 4),
    engines: tuple[str, ...] | None = None,
    backend: str = "serial",
    store=None,
) -> StudyResult:
    """*Measured* thread-scaling ensemble: a thread-count x engine grid.

    The paper-scale Figures 3/4 series are model-predicted
    (:func:`figure3_series` / :func:`figure4_series`); this runs the same
    shape of ensemble for real through :func:`repro.run_study` --
    octant-parallel sweeps at each thread count, one series per engine --
    on whatever (scaled-down) problem the caller supplies.
    """
    axes: dict = {"num_threads": list(thread_counts)}
    if engines is not None:
        axes["engine"] = list(engines)
    study = Study.grid(
        base_spec.with_(octant_parallel=True), name="thread-scaling", **axes
    )
    return run_study(study, backend=backend, store=store)


def measured_scaling_series(
    result: StudyResult,
    *,
    x_axis: str = "num_threads",
    series_axis: str | None = "engine",
    value: str = "solve_wall_seconds",
) -> ScalingSeries:
    """Reshape a study result into a :class:`ScalingSeries`.

    One series per ``series_axis`` value (or a single series named after the
    study), x values sorted ascending -- the same shape
    :func:`thread_scaling_series` produces from the model, so the reporting
    helpers apply to measured ensembles unchanged.
    """
    grouped = result.series(x_axis, value, series_axis=series_axis)
    thread_counts = sorted({x for points in grouped.values() for x, _ in points})
    series = ScalingSeries(
        thread_counts=list(thread_counts), order=result.study.base.order
    )
    for label, points in grouped.items():
        by_x = {x: v for x, v in points}
        missing = [x for x in thread_counts if x not in by_x]
        if missing:
            raise ValueError(f"series {label!r} has no value at {x_axis}={missing}")
        series.series[label] = [by_x[x] for x in thread_counts]
    return series


def block_jacobi_convergence_series(
    rank_grids: tuple[tuple[int, int], ...] = ((1, 1), (2, 1), (2, 2), (4, 2)),
    base_spec: ProblemSpec | None = None,
    backend: str = "serial",
) -> dict[str, list[float]]:
    """Measured block-Jacobi convergence histories vs the number of ranks.

    Section III-A.1 notes that the block-Jacobi global schedule converges more
    slowly as the number of Jacobi blocks (MPI ranks) grows.  This generator
    executes the rank grids as one study (any registered backend) and returns
    the inner iteration error history of each, so the degradation can be
    inspected directly.
    """
    if base_spec is None:
        base_spec = ProblemSpec(
            nx=8, ny=8, nz=8,
            order=1,
            angles_per_octant=1,
            num_groups=2,
            max_twist=0.001,
            num_inners=12,
            num_outers=1,
        )
    study = Study.cases(
        base_spec,
        [{"npex": npex, "npey": npey} for npex, npey in rank_grids],
        name="block-jacobi-convergence",
    )
    result = run_study(study, backend=backend)
    return {
        f"{r.axes['npex']}x{r.axes['npey']} ranks": list(r.result.history.inner_errors)
        for r in result
    }
