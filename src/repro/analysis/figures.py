"""Figure generators: the thread-scaling series of Figures 3 and 4 and the
block-Jacobi convergence study of Section III-A.

The thread-scaling series come from the node performance model
(:mod:`repro.perfmodel`); the block-Jacobi convergence series is *measured*
by running the multi-rank driver with increasing rank counts on the same
problem and recording the iteration error histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..config import ProblemSpec
from ..runner import run
from ..perfmodel.machine import MachineModel, skylake_8176_node
from ..perfmodel.schemes import ThreadingScheme, paper_schemes
from ..perfmodel.simulator import SweepPerformanceModel

__all__ = [
    "ScalingSeries",
    "thread_scaling_series",
    "figure3_series",
    "figure4_series",
    "block_jacobi_convergence_series",
    "PAPER_THREAD_COUNTS",
]

#: The thread counts of the paper's x-axis (1 to 56 physical cores).
PAPER_THREAD_COUNTS = (1, 2, 4, 8, 14, 28, 56)


@dataclass
class ScalingSeries:
    """Thread-scaling data for one figure.

    Attributes
    ----------
    thread_counts:
        The x-axis values.
    series:
        Mapping from scheme label to the list of predicted assemble/solve
        times (seconds), one per thread count.
    order:
        The element order of the figure (1 for Figure 3, 3 for Figure 4).
    """

    thread_counts: list[int]
    series: dict[str, list[float]] = field(default_factory=dict)
    order: int = 1

    def fastest_at(self, threads: int) -> str:
        """Label of the fastest scheme at a given thread count."""
        idx = self.thread_counts.index(threads)
        return min(self.series, key=lambda label: self.series[label][idx])

    def speedup(self, label: str) -> float:
        """Speedup of a scheme from 1 thread to the maximum thread count."""
        values = self.series[label]
        return values[0] / values[-1]


def thread_scaling_series(
    spec: ProblemSpec,
    schemes: list[ThreadingScheme] | None = None,
    thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS,
    machine: MachineModel | None = None,
) -> ScalingSeries:
    """Model-predicted thread-scaling series for an arbitrary problem."""
    schemes = paper_schemes() if schemes is None else schemes
    machine = skylake_8176_node() if machine is None else machine
    model = SweepPerformanceModel(spec, machine=machine)
    result = ScalingSeries(thread_counts=list(thread_counts), order=spec.order)
    for scheme in schemes:
        result.series[scheme.label] = [
            model.sweep_time(scheme, t).seconds for t in thread_counts
        ]
    return result


def figure3_series(
    thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS,
    machine: MachineModel | None = None,
) -> ScalingSeries:
    """Figure 3: thread scaling of the parallel sweep for **linear** elements."""
    return thread_scaling_series(
        ProblemSpec.paper_figure3_4(order=1), thread_counts=thread_counts, machine=machine
    )


def figure4_series(
    thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS,
    machine: MachineModel | None = None,
) -> ScalingSeries:
    """Figure 4: thread scaling of the parallel sweep for **cubic** elements."""
    return thread_scaling_series(
        ProblemSpec.paper_figure3_4(order=3), thread_counts=thread_counts, machine=machine
    )


def block_jacobi_convergence_series(
    rank_grids: tuple[tuple[int, int], ...] = ((1, 1), (2, 1), (2, 2), (4, 2)),
    base_spec: ProblemSpec | None = None,
) -> dict[str, list[float]]:
    """Measured block-Jacobi convergence histories vs the number of ranks.

    Section III-A.1 notes that the block-Jacobi global schedule converges more
    slowly as the number of Jacobi blocks (MPI ranks) grows.  This generator
    runs the same problem on a sequence of rank grids and returns the inner
    iteration error history of each, so the degradation can be inspected
    directly.
    """
    if base_spec is None:
        base_spec = ProblemSpec(
            nx=8, ny=8, nz=8,
            order=1,
            angles_per_octant=1,
            num_groups=2,
            max_twist=0.001,
            num_inners=12,
            num_outers=1,
        )
    histories: dict[str, list[float]] = {}
    for npex, npey in rank_grids:
        spec = base_spec.with_(npex=npex, npey=npey)
        result = run(spec)
        histories[f"{npex}x{npey} ranks"] = list(result.history.inner_errors)
    return histories
