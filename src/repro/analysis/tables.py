"""Table generators: Table I, Table II and the FD-vs-FEM trade-off table.

Table II in the paper runs a 32^3 mesh with 10 angles per octant and 16
groups; :func:`table2_solver_comparison` accepts a scaled-down problem (the
default is 8^3 with 2 angles per octant and 4 groups) so the comparison
completes in seconds under CPython while sweeping the same element orders and
the same two local solvers.  EXPERIMENTS.md records the scaling and the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baseline.snap_fd import SnapDiamondDifferenceSolver
from ..campaign import Study, run_study
from ..config import ProblemSpec
from ..fem.lagrange import matrix_footprint_bytes, nodes_per_element
from ..runner import run

__all__ = [
    "Table1Row",
    "Table2Row",
    "table1_matrix_sizes",
    "table2_study",
    "table2_solver_comparison",
    "fd_vs_fem_comparison",
]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    order: int
    matrix_size: int
    footprint_kb: float

    def as_tuple(self) -> tuple:
        return (
            self.order, f"{self.matrix_size} x {self.matrix_size}", round(self.footprint_kb, 1)
        )


def table1_matrix_sizes(orders: tuple[int, ...] = (1, 2, 3, 4, 5)) -> list[Table1Row]:
    """Table I: size of the local matrix for different finite element orders."""
    rows = []
    for order in orders:
        n = nodes_per_element(order)
        rows.append(
            Table1Row(
                order=order,
                matrix_size=n,
                footprint_kb=matrix_footprint_bytes(order) / 1024.0,
            )
        )
    return rows


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II: one element order, one local solver."""

    order: int
    solver: str
    assemble_solve_seconds: float
    solve_fraction: float
    systems_solved: int

    def as_tuple(self) -> tuple:
        return (
            self.order,
            self.solver,
            round(self.assemble_solve_seconds, 3),
            f"{100.0 * self.solve_fraction:.0f}%",
            self.systems_solved,
        )


def table2_study(
    orders: tuple[int, ...] = (1, 2, 3, 4),
    solvers: tuple[str, ...] = ("ge", "lapack"),
    base_spec: ProblemSpec | None = None,
) -> Study:
    """The Table II ensemble as a declarative order x solver grid study."""
    if base_spec is None:
        base_spec = ProblemSpec(
            nx=6, ny=6, nz=6,
            angles_per_octant=2,
            num_groups=4,
            max_twist=0.001,
            num_inners=2,
            num_outers=1,
        )
    return Study.grid(base_spec, name="table2", order=orders, solver=solvers)


def table2_solver_comparison(
    orders: tuple[int, ...] = (1, 2, 3, 4),
    solvers: tuple[str, ...] = ("ge", "lapack"),
    base_spec: ProblemSpec | None = None,
    backend: str = "serial",
    store=None,
) -> list[Table2Row]:
    """Table II: assemble/solve time and solve fraction per order and solver.

    The (order, solver) grid is a :func:`table2_study` executed through
    :func:`repro.run_study`, so the ensemble can run on any registered
    backend and resume from a result store.

    Parameters
    ----------
    orders:
        Element orders to sweep (the paper uses 1-4).
    solvers:
        Local solvers to compare (the paper compares hand-written GE against
        MKL ``dgesv``).
    base_spec:
        The problem run for every (order, solver) pair; defaults to a
        scaled-down version of the paper's Table II configuration.
    backend:
        Study-execution backend (``"serial"`` keeps the timing columns
        contention-free; ``"process"``/``"thread"`` shard the grid).
    store:
        Optional :class:`repro.campaign.ResultStore` (or directory path)
        making the comparison resumable.
    """
    result = run_study(
        table2_study(orders=orders, solvers=solvers, base_spec=base_spec),
        backend=backend,
        store=store,
    )
    return [
        Table2Row(
            order=study_run.axes["order"],
            solver=study_run.axes["solver"],
            assemble_solve_seconds=study_run.result.timings.total_seconds,
            solve_fraction=study_run.result.timings.solve_fraction,
            systems_solved=study_run.result.timings.systems_solved,
        )
        for study_run in result
    ]


def fd_vs_fem_comparison(
    n: int = 6,
    num_groups: int = 2,
    angles_per_octant: int = 2,
    num_inners: int = 20,
    order: int = 1,
) -> dict:
    """Quantify the Section II-C trade-offs between FD (SNAP) and FEM (UnSNAP).

    Runs the diamond-difference baseline and the DGFEM solver on the same
    (untwisted) structured problem and reports the flux agreement, the
    angular-flux memory-footprint ratio and the per-cell work ratio.
    """
    spec = ProblemSpec(
        nx=n, ny=n, nz=n,
        order=order,
        angles_per_octant=angles_per_octant,
        num_groups=num_groups,
        max_twist=0.0,
        num_inners=num_inners,
        num_outers=1,
        inner_tolerance=1e-8,
    )
    fem = run(spec)
    fd = SnapDiamondDifferenceSolver(
        nx=n, ny=n, nz=n,
        num_groups=num_groups,
        angles_per_octant=angles_per_octant,
        num_inners=num_inners,
        inner_tolerance=1e-8,
    ).solve()

    fem_cells = fem.cell_average_flux  # (E, G) in x-fastest cell ordering
    # The FD solver indexes cells [i, j, k]; the mesh cell id is i + nx*(j + ny*k)
    # (x fastest), so flatten with the z index slowest.
    fd_cells = fd.scalar_flux.transpose(2, 1, 0, 3).reshape(-1, num_groups)
    rel_diff = np.abs(fem_cells - fd_cells) / np.maximum(np.abs(fd_cells), 1e-12)

    nodes = nodes_per_element(order)
    from ..perfmodel.workload import SweepWorkload

    work = SweepWorkload(order=order, num_groups=num_groups)
    fd_flops_per_cell = 3.0 * 2.0 + 10.0  # three diamond relations + the centre update
    return {
        "mean_relative_flux_difference": float(rel_diff.mean()),
        "max_relative_flux_difference": float(rel_diff.max()),
        "fem_memory_ratio": float(nodes),
        "fem_flops_per_item": work.total_flops(),
        "fd_flops_per_item": fd_flops_per_cell,
        "fem_to_fd_work_ratio": work.total_flops() / fd_flops_per_cell,
        "fem_mean_flux": float(fem_cells.mean()),
        "fd_mean_flux": float(fd_cells.mean()),
    }
