"""Generators for every table and figure of the paper's evaluation.

* :func:`table1_matrix_sizes` -- Table I (local matrix size and FP64
  footprint per element order).
* :func:`table2_solver_comparison` -- Table II (assemble/solve time and
  solve fraction for the GE and LAPACK local solvers, per element order).
* :func:`figure3_series` / :func:`figure4_series` -- the thread-scaling
  series of Figures 3 and 4 from the node performance model.
* :func:`block_jacobi_convergence_series` -- the Section III-A discussion of
  convergence degradation with the number of Jacobi blocks, measured.
* :mod:`repro.analysis.reporting` -- plain-text table rendering used by the
  CLI, the examples and the benchmark harness.
"""

from .tables import (
    Table1Row,
    Table2Row,
    table1_matrix_sizes,
    table2_solver_comparison,
    fd_vs_fem_comparison,
)
from .figures import (
    ScalingSeries,
    figure3_series,
    figure4_series,
    thread_scaling_series,
    block_jacobi_convergence_series,
)
from .reporting import format_table, format_scaling_series

__all__ = [
    "Table1Row",
    "Table2Row",
    "table1_matrix_sizes",
    "table2_solver_comparison",
    "fd_vs_fem_comparison",
    "ScalingSeries",
    "figure3_series",
    "figure4_series",
    "thread_scaling_series",
    "block_jacobi_convergence_series",
    "format_table",
    "format_scaling_series",
]
