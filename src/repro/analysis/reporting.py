"""Plain-text rendering of tables and scaling series.

The mini-app is a command-line tool, so every table/figure reproduction is
rendered as aligned text (the same rows/series the paper reports) rather than
as an image; the benchmark harness and the examples print these.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "format_table",
    "format_scaling_series",
    "format_verification_report",
    "format_bench_report",
    "format_bench_comparison",
]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_verification_report(report) -> str:
    """Render a :class:`repro.verify.VerificationReport` as text tables.

    One table per suite that ran: the MMS order estimates, the conformance
    matrix summary (with any failed bit-for-bit checks called out row by
    row), the golden-store case statuses, and the analytic driver
    benchmarks.
    """
    sections: list[str] = []

    if report.mms:
        rows = [
            (
                e.problem,
                e.discretisation,
                e.theoretical_order,
                round(e.observed_order, 3),
                round(e.fitted_order, 3),
                e.tolerance,
                "x".join(str(n) for n in e.resolutions),
                "pass" if e.passed else "FAIL",
            )
            for e in report.mms
        ]
        sections.append(
            format_table(
                ("problem", "disc", "theory", "observed", "fitted", "tol", "meshes", "status"),
                rows,
                title="MMS convergence orders (observed must be within tol of theory)",
            )
        )

    if report.conformance is not None:
        conf = report.conformance
        summary_rows = [
            ("cases", len(conf.cases)),
            ("engines", ", ".join(conf.engines)),
            ("solvers", ", ".join(conf.solvers)),
            ("backends", ", ".join(conf.backends)),
            ("max pairwise deviation", conf.max_pairwise_deviation),
            ("tolerance", conf.tolerance),
            ("bitwise checks", len(conf.checks)),
            ("status", "pass" if conf.passed else "FAIL"),
        ]
        sections.append(
            format_table(("quantity", "value"), summary_rows, title="Conformance matrix")
        )
        if conf.failed_checks:
            rows = [(c.kind, c.group, ", ".join(c.members)) for c in conf.failed_checks]
            sections.append(
                format_table(("kind", "group", "members"), rows, title="FAILED bitwise checks")
            )

    if report.golden is not None:
        rows = [
            (
                r.name,
                r.status,
                r.detail or "-",
                "-" if r.max_deviation is None else r.max_deviation,
            )
            for r in report.golden.results
        ]
        for stale in report.golden.stale_keys:
            rows.append((stale[:16] + "...", "stale", "record matches no golden case", "-"))
        sections.append(
            format_table(
                ("case", "status", "detail", "max deviation"),
                rows,
                title=f"Golden regression store ({report.golden.golden_dir})",
            )
        )

    if getattr(report, "drivers", None) is not None:
        k = report.drivers.k_infinity
        decay = report.drivers.decay
        rows = [
            (
                "k_eigenvalue vs analytic k-infinity",
                f"{k.error:.3e} <= {k.tolerance:.0e}",
                f"k={k.k_computed:.10f} in {k.power_iterations} iterations",
                "pass" if k.passed else "FAIL",
            ),
            (
                "time_dependent decay order in dt",
                f"|{decay.observed_order:.3f} - {decay.theoretical_order:g}| "
                f"<= {decay.tolerance}",
                "dt = " + ", ".join(f"{dt:g}" for dt in decay.dts),
                "pass" if decay.passed else "FAIL",
            ),
        ]
        sections.append(
            format_table(
                ("benchmark", "criterion", "detail", "status"),
                rows,
                title="Driver benchmarks (analytic references)",
            )
        )

    sections.append(f"verification {'PASSED' if report.passed else 'FAILED'}")
    return "\n\n".join(sections)


def format_scaling_series(
    thread_counts: Sequence[int],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    unit: str = "s",
) -> str:
    """Render thread-scaling curves (one row per scheme, one column per count)."""
    headers = ["scheme"] + [f"{t} thr" for t in thread_counts]
    rows = []
    for label, values in series.items():
        if len(values) != len(thread_counts):
            raise ValueError(f"series {label!r} length does not match thread counts")
        rows.append([label] + [f"{v:.2f}{unit}" for v in values])
    return format_table(headers, rows, title=title)


def format_bench_report(report) -> str:
    """Render a :class:`repro.bench.BenchReport` as one table per case."""
    sections: list[str] = []
    workload = report.workload
    tier = "smoke" if workload.smoke else "full"
    sections.append(
        f"benchmark workload ({tier} tier): {workload.n}^3 cells, "
        f"{8 * workload.angles_per_octant} angles, {workload.num_groups} groups, "
        f"{workload.sweeps} sweeps, {workload.warmup} warmup + "
        f"{workload.repeats} repeats"
    )
    for case in report.cases:
        rows = [
            (
                sample.name,
                sample.best,
                sample.mean,
                len(sample.seconds),
                ", ".join(
                    f"{key}={_format_cell(value)}"
                    for key, value in sorted(sample.metrics.items())
                    if isinstance(value, (int, float)) and not isinstance(value, bool)
                ),
            )
            for sample in case.samples
        ]
        tags = ", ".join(case.tags) or "-"
        sections.append(
            format_table(
                ("sample", "best s", "mean s", "n", "metrics"),
                rows,
                title=f"{case.name} [{tags}]",
            )
        )
    return "\n\n".join(sections)


def format_bench_comparison(comparison) -> str:
    """Render a :class:`repro.bench.BenchComparison` with per-sample verdicts."""
    rows = [
        (
            entry.case,
            entry.sample,
            entry.baseline_seconds,
            entry.current_seconds,
            f"{entry.speedup:.2f}x",
            entry.verdict.upper(),
        )
        for entry in comparison.entries
    ]
    lines = [
        format_table(
            ("case", "sample", "baseline s", "current s", "speedup", "verdict"),
            rows,
            title=f"Benchmark comparison (slowdown tolerance "
            f"{100 * comparison.tolerance:.0f}%)",
        )
    ]
    if comparison.missing:
        lines.append(
            "not measured this run: "
            + ", ".join(f"{case}/{sample}" for case, sample in comparison.missing)
        )
    if comparison.new:
        lines.append(
            "new samples (no baseline): "
            + ", ".join(f"{case}/{sample}" for case, sample in comparison.new)
        )
    if not comparison.workload_match:
        lines.append(
            "WARNING: the reports measured different workloads (problem sizes "
            "differ) -- wall clocks are not comparable, verdicts are advisory "
            "and never fail the regression gate"
        )
    if not getattr(comparison, "machine_match", True):
        lines.append(
            "WARNING: the reports carry different machine fingerprints "
            "(hardware/runtime differ) -- expect wall-clock noise; this is "
            "advisory and never fails the regression gate"
        )
    lines.append(f"comparison verdict: {comparison.verdict.upper()}")
    return "\n\n".join(lines)
