"""Plain-text rendering of tables and scaling series.

The mini-app is a command-line tool, so every table/figure reproduction is
rendered as aligned text (the same rows/series the paper reports) rather than
as an image; the benchmark harness and the examples print these.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_scaling_series"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_scaling_series(
    thread_counts: Sequence[int],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    unit: str = "s",
) -> str:
    """Render thread-scaling curves (one row per scheme, one column per count)."""
    headers = ["scheme"] + [f"{t} thr" for t in thread_counts]
    rows = []
    for label, values in series.items():
        if len(values) != len(thread_counts):
            raise ValueError(f"series {label!r} length does not match thread counts")
        rows.append([label] + [f"{v:.2f}{unit}" for v in values])
    return format_table(headers, rows, title=title)
