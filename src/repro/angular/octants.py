"""Octant bookkeeping and axis-aligned upwind face helpers.

For an axis-aligned (untwisted) hexahedral cell the incoming and outgoing
faces of a direction depend only on the signs of its direction cosines; for a
twisted mesh the sweep-schedule construction instead uses the actual face
normals (see :mod:`repro.sweepsched.graph`).  The helpers here serve the
finite-difference baseline, the structured KBA driver and a fast path for
untwisted meshes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "octant_of_direction",
    "incoming_faces_for_direction",
    "outgoing_faces_for_direction",
]


def octant_of_direction(direction: np.ndarray) -> int:
    """Octant index (0..7) of a direction vector.

    The bit pattern of the result flips the sign of the corresponding axis
    (bit 0 -> x negative, bit 1 -> y negative, bit 2 -> z negative), matching
    :data:`repro.angular.quadrature.OCTANT_SIGNS`.
    """
    d = np.asarray(direction, dtype=float)
    if d.shape != (3,):
        raise ValueError("direction must be a 3-vector")
    if np.any(d == 0.0):
        raise ValueError("direction cosines must be non-zero to define an octant")
    return int((d[0] < 0) + 2 * (d[1] < 0) + 4 * (d[2] < 0))


def incoming_faces_for_direction(direction: np.ndarray) -> list[int]:
    """Faces of an axis-aligned cell through which particles enter.

    Face numbering: 0:-x, 1:+x, 2:-y, 3:+y, 4:-z, 5:+z.  A positive x
    direction cosine means particles enter through the -x face (0), etc.
    """
    d = np.asarray(direction, dtype=float)
    faces = []
    for axis in range(3):
        if d[axis] > 0:
            faces.append(2 * axis)
        elif d[axis] < 0:
            faces.append(2 * axis + 1)
    return faces


def outgoing_faces_for_direction(direction: np.ndarray) -> list[int]:
    """Faces of an axis-aligned cell through which particles leave."""
    d = np.asarray(direction, dtype=float)
    faces = []
    for axis in range(3):
        if d[axis] > 0:
            faces.append(2 * axis + 1)
        elif d[axis] < 0:
            faces.append(2 * axis)
    return faces
