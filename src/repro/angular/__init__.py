"""Discrete-ordinates angular discretisation.

Provides the SN quadrature sets (directions, weights, octant bookkeeping)
used by the sweep.  SNAP/UnSNAP use artificial, auto-generated quadrature
data; :func:`snap_dummy_quadrature` reproduces that style while
:func:`product_quadrature` provides a conventional Gauss-Legendre (polar) x
Chebyshev (azimuthal) product set for accuracy studies.
"""

from .quadrature import (
    AngularQuadrature,
    OCTANT_SIGNS,
    product_quadrature,
    snap_dummy_quadrature,
)
from .octants import (
    incoming_faces_for_direction,
    octant_of_direction,
    outgoing_faces_for_direction,
)

__all__ = [
    "AngularQuadrature",
    "OCTANT_SIGNS",
    "product_quadrature",
    "snap_dummy_quadrature",
    "octant_of_direction",
    "incoming_faces_for_direction",
    "outgoing_faces_for_direction",
]
