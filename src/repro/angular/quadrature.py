"""SN angular quadrature sets.

The discrete-ordinates method replaces the angular integral of the transport
equation by a weighted sum over a finite set of directions ("ordinates").
UnSNAP inherits SNAP's convention of an arbitrary, input-controlled number of
angles per octant with artificial (auto-generated) quadrature data, and
sweeps octants in turn while angles within an octant may be processed
concurrently.

Two generators are provided:

* :func:`product_quadrature` -- Gauss-Legendre in the polar cosine and
  equally-spaced (Chebyshev) azimuthal angles, a standard product set.
* :func:`snap_dummy_quadrature` -- the SNAP-style artificial set: a requested
  number of angles per octant with equal weights, laid out on the product
  grid.  This matches the paper's "36 angles per octant" / "10 angles per
  octant" configurations, which need not correspond to a classical
  level-symmetric order.

Weights are normalised so that the sum over all ``8 x per_octant`` ordinates
is 1; the scalar flux is then simply ``sum_a w_a psi_a`` (SNAP convention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "OCTANT_SIGNS",
    "AngularQuadrature",
    "product_quadrature",
    "snap_dummy_quadrature",
]

#: Direction-cosine signs of each of the 8 octants.  Octant 0 is the
#: all-positive octant; the bit pattern of the octant index flips the sign of
#: the corresponding axis (bit 0 -> x, bit 1 -> y, bit 2 -> z).
OCTANT_SIGNS = np.array(
    [
        [+1, +1, +1],
        [-1, +1, +1],
        [+1, -1, +1],
        [-1, -1, +1],
        [+1, +1, -1],
        [-1, +1, -1],
        [+1, -1, -1],
        [-1, -1, -1],
    ],
    dtype=float,
)


@dataclass(frozen=True)
class AngularQuadrature:
    """A discrete-ordinates quadrature set.

    Attributes
    ----------
    directions:
        ``(M, 3)`` unit direction vectors (mu, eta, xi).
    weights:
        ``(M,)`` quadrature weights summing to 1 over the full sphere.
    octants:
        ``(M,)`` octant index (0..7) of each ordinate.
    per_octant:
        Number of ordinates in each octant (identical for all octants).
    """

    directions: np.ndarray
    weights: np.ndarray
    octants: np.ndarray
    per_octant: int

    def __post_init__(self) -> None:
        d = np.asarray(self.directions, dtype=float)
        w = np.asarray(self.weights, dtype=float)
        o = np.asarray(self.octants, dtype=np.int64)
        if d.ndim != 2 or d.shape[1] != 3:
            raise ValueError("directions must have shape (M, 3)")
        if w.shape != (d.shape[0],) or o.shape != (d.shape[0],):
            raise ValueError("weights and octants must match the number of directions")
        object.__setattr__(self, "directions", d)
        object.__setattr__(self, "weights", w)
        object.__setattr__(self, "octants", o)

    # ------------------------------------------------------------------ sizes
    @property
    def num_angles(self) -> int:
        """Total number of ordinates over all 8 octants."""
        return self.directions.shape[0]

    @property
    def num_octants(self) -> int:
        return 8

    # ------------------------------------------------------------ navigation
    def angles_in_octant(self, octant: int) -> np.ndarray:
        """Indices of the ordinates belonging to the given octant."""
        if not 0 <= octant < 8:
            raise ValueError(f"octant must be in 0..7, got {octant}")
        return np.nonzero(self.octants == octant)[0]

    def octant_order(self) -> list[np.ndarray]:
        """The per-octant angle lists in sweep order (octants swept in turn)."""
        return [self.angles_in_octant(o) for o in range(8)]

    # ------------------------------------------------------------- integrals
    def integrate(self, angular_values: np.ndarray, axis: int = 0) -> np.ndarray:
        """Angular integral (scalar-flux style weighted sum) along ``axis``."""
        values = np.asarray(angular_values, dtype=float)
        return np.tensordot(self.weights, values, axes=(0, axis))

    def mean_direction(self) -> np.ndarray:
        """Weighted mean direction; zero for any symmetric set."""
        return self.weights @ self.directions


def _octant_directions(mu: np.ndarray, phi: np.ndarray) -> np.ndarray:
    """Directions in the all-positive octant from polar cosines and azimuths."""
    sin_theta = np.sqrt(np.maximum(0.0, 1.0 - mu**2))
    return np.stack(
        [sin_theta * np.cos(phi), sin_theta * np.sin(phi), mu],
        axis=-1,
    )


def _replicate_octants(base_dirs: np.ndarray, base_weights: np.ndarray) -> AngularQuadrature:
    per_octant = base_dirs.shape[0]
    directions = np.concatenate([base_dirs * OCTANT_SIGNS[o] for o in range(8)], axis=0)
    weights = np.tile(base_weights, 8)
    octants = np.repeat(np.arange(8, dtype=np.int64), per_octant)
    weights = weights / weights.sum()
    return AngularQuadrature(
        directions=directions, weights=weights, octants=octants, per_octant=per_octant
    )


def product_quadrature(n_polar: int, n_azimuthal: int) -> AngularQuadrature:
    """Gauss-Legendre x Chebyshev product quadrature.

    Parameters
    ----------
    n_polar:
        Number of Gauss-Legendre polar cosines per octant (in ``(0, 1)``).
    n_azimuthal:
        Number of equally spaced azimuthal angles per octant (in
        ``(0, pi/2)``).
    """
    if n_polar < 1 or n_azimuthal < 1:
        raise ValueError("need at least one polar and one azimuthal angle per octant")
    # Gauss-Legendre on (0, 1) for the polar cosine.
    x, w = np.polynomial.legendre.leggauss(n_polar)
    mu = 0.5 * (x + 1.0)
    wmu = 0.5 * w
    # Mid-point azimuths in (0, pi/2) with equal weights.
    phi = (np.arange(n_azimuthal) + 0.5) * (np.pi / 2.0) / n_azimuthal
    wphi = np.full(n_azimuthal, 1.0 / n_azimuthal)

    mu_grid, phi_grid = np.meshgrid(mu, phi, indexing="ij")
    w_grid = np.outer(wmu, wphi)
    dirs = _octant_directions(mu_grid.reshape(-1), phi_grid.reshape(-1))
    return _replicate_octants(dirs, w_grid.reshape(-1))


def _factor_pair(n: int) -> tuple[int, int]:
    """Most-square factorisation ``a * b = n`` with ``a >= b``."""
    b = int(np.floor(np.sqrt(n)))
    while b > 1 and n % b != 0:
        b -= 1
    return n // b, b


def snap_dummy_quadrature(per_octant: int) -> AngularQuadrature:
    """SNAP-style artificial quadrature with ``per_octant`` equal-weight angles.

    SNAP auto-generates its problem data from input parameters rather than
    reading a physical quadrature file; this constructor mirrors that by
    distributing the requested number of ordinates over the product grid of
    the most-square factorisation of ``per_octant`` and assigning every
    ordinate the same weight.
    """
    if per_octant < 1:
        raise ValueError("per_octant must be >= 1")
    n_polar, n_azimuthal = _factor_pair(per_octant)
    # Mid-point polar cosines (SNAP's evenly spaced dummy mu values).
    mu = (np.arange(n_polar) + 0.5) / n_polar
    phi = (np.arange(n_azimuthal) + 0.5) * (np.pi / 2.0) / n_azimuthal
    mu_grid, phi_grid = np.meshgrid(mu, phi, indexing="ij")
    dirs = _octant_directions(mu_grid.reshape(-1), phi_grid.reshape(-1))
    weights = np.full(per_octant, 1.0)
    return _replicate_octants(dirs, weights)
