"""SNAP-style input deck parsing.

SNAP reads a Fortran-namelist-flavoured input deck of ``key = value`` pairs;
UnSNAP adds options for the element order and the mesh twist.  The parser
below accepts the same flavour (one assignment per line or several separated
by whitespace, ``!`` or ``#`` comments, a ``/`` terminator) and maps the SNAP
parameter names onto :class:`repro.config.ProblemSpec` fields.

Recognised keys (SNAP name -> ProblemSpec field)::

    nx, ny, nz          -> nx, ny, nz
    lx, ly, lz          -> lx, ly, lz
    nang                -> angles_per_octant
    ng                  -> num_groups
    iitm                -> num_inners
    oitm                -> num_outers
    epsi                -> inner_tolerance (and outer_tolerance)
    scatp / c           -> scattering_ratio
    order               -> order
    twist               -> max_twist
    twist_axis          -> twist_axis
    solver              -> solver
    engine              -> engine
    octant_parallel     -> octant_parallel (0/1, also accepts true/false)
    npex, npey          -> npex, npey
    src_opt, mat_opt    -> accepted (only option 1 data is generated)
"""

from __future__ import annotations

from pathlib import Path

from .config import ProblemSpec

__all__ = ["parse_input_deck", "loads", "spec_to_deck"]

_INT_KEYS = {
    "nx": "nx", "ny": "ny", "nz": "nz",
    "nang": "angles_per_octant",
    "ng": "num_groups",
    "iitm": "num_inners",
    "oitm": "num_outers",
    "order": "order",
    "npex": "npex",
    "npey": "npey",
}
_FLOAT_KEYS = {
    "lx": "lx", "ly": "ly", "lz": "lz",
    "epsi": "inner_tolerance",
    "scatp": "scattering_ratio",
    "c": "scattering_ratio",
    "twist": "max_twist",
    "qsrc": "source_strength",
}
_STR_KEYS = {
    "twist_axis": "twist_axis",
    "solver": "solver",
    "engine": "engine",
}
_BOOL_KEYS = {
    "octant_parallel": "octant_parallel",
}
_IGNORED_KEYS = {"src_opt", "mat_opt", "timedep", "fixup", "nthreads", "nnested"}


def _parse_bool(key: str, raw: str) -> bool:
    token = raw.strip().strip("'\"").lower()
    if token in ("1", "true", "t", "yes", "on"):
        return True
    if token in ("0", "false", "f", "no", "off"):
        return False
    raise ValueError(f"cannot parse boolean deck value {key}={raw!r}")


def _tokenise(text: str) -> list[tuple[str, str]]:
    pairs: list[tuple[str, str]] = []
    for raw_line in text.splitlines():
        line = raw_line.split("!")[0].split("#")[0].strip()
        if not line or line in ("/", "&invar", "&end"):
            continue
        # Allow several "key=value" groups on one line, comma separated.
        for chunk in line.replace(",", " ").split():
            if "=" not in chunk:
                raise ValueError(f"cannot parse input token {chunk!r} (expected key=value)")
            key, value = chunk.split("=", 1)
            pairs.append((key.strip().lower(), value.strip()))
    return pairs


def loads(text: str) -> ProblemSpec:
    """Parse an input deck from a string into a :class:`ProblemSpec`."""
    values: dict = {}
    epsi_seen = False
    for key, raw in _tokenise(text):
        if key in _IGNORED_KEYS:
            continue
        if key in _INT_KEYS:
            values[_INT_KEYS[key]] = int(float(raw))
        elif key in _FLOAT_KEYS:
            values[_FLOAT_KEYS[key]] = float(raw)
            if key == "epsi":
                epsi_seen = True
        elif key in _STR_KEYS:
            values[_STR_KEYS[key]] = raw.strip("'\"")
        elif key in _BOOL_KEYS:
            values[_BOOL_KEYS[key]] = _parse_bool(key, raw)
        else:
            raise KeyError(f"unknown input deck key {key!r}")
    if epsi_seen:
        values.setdefault("outer_tolerance", values["inner_tolerance"])
    return ProblemSpec(**values)


def parse_input_deck(path: str | Path) -> ProblemSpec:
    """Parse an input deck file into a :class:`ProblemSpec`."""
    return loads(Path(path).read_text())


def spec_to_deck(spec: ProblemSpec) -> str:
    """Serialise a :class:`ProblemSpec` back into deck text (round-trippable)."""
    lines = [
        f"nx={spec.nx} ny={spec.ny} nz={spec.nz}",
        f"lx={spec.lx} ly={spec.ly} lz={spec.lz}",
        f"nang={spec.angles_per_octant} ng={spec.num_groups}",
        f"iitm={spec.num_inners} oitm={spec.num_outers}",
        f"epsi={spec.inner_tolerance}",
        f"order={spec.order} twist={spec.max_twist} twist_axis={spec.twist_axis}",
        f"scatp={spec.scattering_ratio} qsrc={spec.source_strength}",
        f"solver={spec.solver} engine={spec.engine}",
        f"octant_parallel={int(spec.octant_parallel)}",
        f"npex={spec.npex} npey={spec.npey}",
        "/",
    ]
    return "\n".join(lines)
