"""SNAP-style input deck parsing.

SNAP reads a Fortran-namelist-flavoured input deck of ``key = value`` pairs;
UnSNAP adds options for the element order and the mesh twist.  The parser
below accepts the same flavour (one assignment per line or several separated
by whitespace, ``!`` or ``#`` comments, a ``/`` terminator) and maps the SNAP
parameter names onto :class:`repro.config.ProblemSpec` fields.

Recognised keys (SNAP name -> ProblemSpec field)::

    nx, ny, nz          -> nx, ny, nz
    lx, ly, lz          -> lx, ly, lz
    nang                -> angles_per_octant
    ng                  -> num_groups
    iitm                -> num_inners
    oitm                -> num_outers
    epsi                -> inner_tolerance (and outer_tolerance)
    scatp / c           -> scattering_ratio
    order               -> order
    twist               -> max_twist
    twist_axis          -> twist_axis
    solver              -> solver
    engine              -> engine
    octant_parallel     -> octant_parallel (0/1, also accepts true/false)
    npex, npey          -> npex, npey
    src_opt, mat_opt    -> accepted (only option 1 data is generated)

An unknown or mistyped key raises an error naming the offending key and
listing the valid keys for the section it appeared in.

Driver section
--------------
A ``[driver]`` section selects and configures the outer-loop driver
(:mod:`repro.drivers`); fixed-source decks need none.  Keys (aliases in
parentheses)::

    driver (mode)          -> driver            # fixed_source | k_eigenvalue | time_dependent
    k_tolerance (epsk)     -> k_tolerance       # power-iteration convergence
    max_power_iters        -> max_power_iters
    dt                     -> dt                # backward-Euler step size
    n_steps (nsteps)       -> n_steps
    t_end (tf)             -> t_end             # overrides n_steps when > 0
    initial_flux_value     -> initial_flux_value
    snapshot_every         -> snapshot_every

Study decks
-----------
A deck may additionally declare a ``[study]`` section turning it into a
declarative multi-run campaign (:class:`repro.campaign.Study`): the keys
before the section header (or under an explicit ``[problem]`` header) define
the base problem, and each ``[study]`` line defines one axis as a list of
values -- the study is the cartesian grid of all axes::

    nx=4 ny=4 nz=4 ng=2
    [study]
    engine = vectorized, prefactorized
    order  = 1, 2
    nthreads = 1, 2        ! run option: repro.run(num_threads=...)

Axis keys are the deck keys above (or, equivalently, the ProblemSpec field
names they map to) plus ``nthreads``/``num_threads`` for the per-run thread
count.  Parse study decks with :func:`parse_study_deck` /
:func:`loads_study`; :func:`parse_input_deck` rejects them with a pointer,
so a study deck is never silently collapsed to its base problem.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from pathlib import Path

from .campaign.study import Study
from .config import _ELIDED_DEFAULTS, ProblemSpec

__all__ = [
    "parse_input_deck",
    "loads",
    "spec_to_deck",
    "parse_study_deck",
    "loads_study",
    "loads_study_parts",
    "deck_has_study",
    "parse_axis_option",
    "valid_problem_keys",
    "valid_study_keys",
    "UnknownDeckKeyError",
]


class UnknownDeckKeyError(KeyError):
    """An input deck used a key its section does not accept.

    Subclasses :class:`KeyError` so existing ``except KeyError`` consumers
    (the CLI) keep working, but carries the offending :attr:`key`, the
    :attr:`section` it appeared in and that section's :attr:`valid_keys` as
    stable attributes -- the HTTP gateway maps them into a structured 400
    body instead of parsing the message string.
    """

    def __init__(self, key: str, section: str, valid_keys: list[str]):
        self.key = key
        self.section = section
        self.valid_keys = tuple(valid_keys)
        super().__init__(
            f"unknown input deck key {key!r} in [{section}] section; "
            f"valid keys: {', '.join(valid_keys)}"
        )

_INT_KEYS = {
    "nx": "nx", "ny": "ny", "nz": "nz",
    "nang": "angles_per_octant",
    "ng": "num_groups",
    "iitm": "num_inners",
    "oitm": "num_outers",
    "order": "order",
    "npex": "npex",
    "npey": "npey",
    "cache_budget": "factor_cache_budget_bytes",
    "factor_cache_budget_bytes": "factor_cache_budget_bytes",
}
_FLOAT_KEYS = {
    "lx": "lx", "ly": "ly", "lz": "lz",
    "epsi": "inner_tolerance",
    "scatp": "scattering_ratio",
    "c": "scattering_ratio",
    "twist": "max_twist",
    "qsrc": "source_strength",
}
_STR_KEYS = {
    "twist_axis": "twist_axis",
    "solver": "solver",
    "engine": "engine",
}
_BOOL_KEYS = {
    "octant_parallel": "octant_parallel",
}
_IGNORED_KEYS = {"src_opt", "mat_opt", "timedep", "fixup", "nthreads", "nnested"}

#: ``[driver]`` section keys (deck name -> ProblemSpec field).  The spec
#: field names themselves are accepted alongside the SNAP-flavoured aliases.
_DRIVER_INT_KEYS = {
    "n_steps": "n_steps",
    "nsteps": "n_steps",
    "max_power_iters": "max_power_iters",
    "snapshot_every": "snapshot_every",
}
_DRIVER_FLOAT_KEYS = {
    "dt": "dt",
    "t_end": "t_end",
    "tf": "t_end",
    "k_tolerance": "k_tolerance",
    "epsk": "k_tolerance",
    "initial_flux_value": "initial_flux_value",
}
_DRIVER_STR_KEYS = {
    "driver": "driver",
    "mode": "driver",
}

#: Deck sections; keys before any header belong to ``problem``.
_SECTIONS = ("problem", "driver", "study")


def valid_problem_keys() -> list[str]:
    """Every key accepted in the (default) problem section."""
    return sorted(
        set(_INT_KEYS) | set(_FLOAT_KEYS) | set(_STR_KEYS) | set(_BOOL_KEYS) | _IGNORED_KEYS
    )


def valid_driver_keys() -> list[str]:
    """Every key accepted in the ``[driver]`` section."""
    return sorted(set(_DRIVER_INT_KEYS) | set(_DRIVER_FLOAT_KEYS) | set(_DRIVER_STR_KEYS))


def valid_study_keys() -> list[str]:
    """Every axis key accepted in the ``[study]`` section (and ``--axis``)."""
    deck_keys = (
        set(_INT_KEYS)
        | set(_FLOAT_KEYS)
        | set(_STR_KEYS)
        | set(_BOOL_KEYS)
        | set(_DRIVER_INT_KEYS)
        | set(_DRIVER_FLOAT_KEYS)
        | set(_DRIVER_STR_KEYS)
    )
    field_names = {
        f.name for f in dataclass_fields(ProblemSpec) if f.type in ("int", "float", "str", "bool")
    }
    return sorted(deck_keys | field_names | {"nthreads", "num_threads"})


def _unknown_key_error(key: str, section: str, valid: list[str]) -> UnknownDeckKeyError:
    return UnknownDeckKeyError(key, section, valid)


def _parse_bool(key: str, raw: str) -> bool:
    token = raw.strip().strip("'\"").lower()
    if token in ("1", "true", "t", "yes", "on"):
        return True
    if token in ("0", "false", "f", "no", "off"):
        return False
    raise ValueError(f"cannot parse boolean deck value {key}={raw!r}")


def _split_sections(text: str) -> dict[str, list[str]]:
    """Strip comments/terminators and group the content lines per section."""
    sections: dict[str, list[str]] = {name: [] for name in _SECTIONS}
    current = "problem"
    for raw_line in text.splitlines():
        line = raw_line.split("!")[0].split("#")[0].strip()
        if not line or line in ("/", "&invar", "&end"):
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ValueError(f"malformed section header {line!r} (expected [name])")
            name = line[1:-1].strip().lower()
            if name not in sections:
                raise ValueError(
                    f"unknown input deck section [{name}]; valid sections: "
                    + ", ".join(f"[{s}]" for s in _SECTIONS)
                )
            current = name
            continue
        sections[current].append(line)
    return sections


def _tokenise(lines: list[str]) -> list[tuple[str, str]]:
    pairs: list[tuple[str, str]] = []
    for line in lines:
        # Allow several "key=value" groups on one line, comma separated.
        for chunk in line.replace(",", " ").split():
            if "=" not in chunk:
                raise ValueError(f"cannot parse input token {chunk!r} (expected key=value)")
            key, value = chunk.split("=", 1)
            pairs.append((key.strip().lower(), value.strip()))
    return pairs


#: The key tables with their value types; value parsing always goes through
#: :func:`_type_parser`, so the problem section and the study axes cannot
#: drift apart in how they convert the same key.
_KEY_TABLES = (
    (_INT_KEYS, "int"),
    (_FLOAT_KEYS, "float"),
    (_STR_KEYS, "str"),
    (_BOOL_KEYS, "bool"),
)

#: ``[driver]`` section key tables, same shape as :data:`_KEY_TABLES`.
_DRIVER_KEY_TABLES = (
    (_DRIVER_INT_KEYS, "int"),
    (_DRIVER_FLOAT_KEYS, "float"),
    (_DRIVER_STR_KEYS, "str"),
)


def _type_parser(type_name: str, key: str):
    """The value parser for one deck/spec value type (single source of truth)."""
    return {
        "int": lambda raw: int(float(raw)),
        "float": float,
        "str": lambda raw: raw.strip("'\""),
        "bool": lambda raw: _parse_bool(key, raw),
    }.get(type_name)


def _problem_values(pairs: list[tuple[str, str]]) -> dict:
    values: dict = {}
    epsi_seen = False
    for key, raw in pairs:
        if key in _IGNORED_KEYS:
            continue
        for table, type_name in _KEY_TABLES:
            if key in table:
                values[table[key]] = _type_parser(type_name, key)(raw)
                if key == "epsi":
                    epsi_seen = True
                break
        else:
            raise _unknown_key_error(key, "problem", valid_problem_keys())
    if epsi_seen:
        values.setdefault("outer_tolerance", values["inner_tolerance"])
    return values


def _driver_values(pairs: list[tuple[str, str]]) -> dict:
    values: dict = {}
    for key, raw in pairs:
        for table, type_name in _DRIVER_KEY_TABLES:
            if key in table:
                values[table[key]] = _type_parser(type_name, key)(raw)
                break
        else:
            raise _unknown_key_error(key, "driver", valid_driver_keys())
    return values


def loads(text: str) -> ProblemSpec:
    """Parse an input deck from a string into a :class:`ProblemSpec`.

    Decks declaring a ``[study]`` section describe a multi-run campaign, not
    a single problem, and are rejected with a pointer to
    :func:`loads_study` / ``unsnap study``.
    """
    sections = _split_sections(text)
    if sections["study"]:
        raise ValueError(
            "this deck declares a [study] section (a multi-run campaign); "
            "parse it with parse_study_deck()/loads_study() or run it with "
            "`unsnap study --deck ...`"
        )
    values = _problem_values(_tokenise(sections["problem"]))
    values.update(_driver_values(_tokenise(sections["driver"])))
    return ProblemSpec(**values)


def parse_input_deck(path: str | Path) -> ProblemSpec:
    """Parse an input deck file into a :class:`ProblemSpec`."""
    return loads(Path(path).read_text())


def deck_has_study(text: str) -> bool:
    """Whether the deck declares a (non-empty) ``[study]`` section."""
    return bool(_split_sections(text)["study"])


# ----------------------------------------------------------------- study axes
def _axis_target(key: str):
    """Resolve an axis key to ``(spec field or run option, value parser)``."""
    for table, type_name in _KEY_TABLES + _DRIVER_KEY_TABLES:
        if key in table:
            return table[key], _type_parser(type_name, key)
    if key in ("nthreads", "num_threads"):
        return "num_threads", _type_parser("int", key)
    # Spec field names are accepted directly (e.g. num_groups next to ng).
    by_name = {f.name: f.type for f in dataclass_fields(ProblemSpec)}
    if key in by_name:
        parser = _type_parser(by_name[key], key)
        if parser is not None:
            return key, parser
    raise _unknown_key_error(key, "study", valid_study_keys())


def _parse_axis_line(line: str) -> tuple[str, list]:
    """Parse one ``[study]`` axis line ``key = v1, v2 v3`` into typed values."""
    if "=" not in line:
        raise ValueError(
            f"cannot parse study axis {line!r} (expected key = value, value, ...)"
        )
    key, rhs = line.split("=", 1)
    key = key.strip().lower()
    field, parser = _axis_target(key)
    raws = rhs.replace(",", " ").split()
    if not raws:
        raise ValueError(f"study axis {key!r} has no values")
    # Unlike the problem section, [study] lines hold ONE axis each (the
    # values are the list); catch the several-groups-per-line habit early.
    offender = next((raw for raw in raws if "=" in raw), None)
    if offender is not None:
        raise ValueError(
            f"study axis {key!r} mixes a second assignment {offender!r} into its "
            f"values; [study] sections take one axis per line (key = v1, v2, ...)"
        )
    return field, [parser(raw) for raw in raws]


def parse_axis_option(option: str) -> tuple[str, list]:
    """Parse a CLI ``--axis key=v1,v2`` option (same typing as the deck)."""
    return _parse_axis_line(option)


def _deck_axes(lines: list[str]) -> dict[str, list]:
    axes: dict[str, list] = {}
    for line in lines:
        field, values = _parse_axis_line(line)
        if field in axes:
            raise ValueError(f"duplicate study axis {field!r} in [study] section")
        axes[field] = values
    return axes


def loads_study_parts(text: str) -> tuple[ProblemSpec, dict[str, list]]:
    """Parse a deck into its base spec and its ``[study]`` axes.

    The axes dict maps :class:`ProblemSpec` field names (or ``num_threads``)
    to value lists, in deck order; it is empty for a plain problem deck.
    The CLI uses this form so command-line flags can override the base and
    ``--axis`` options can extend the grid before the study is built.
    """
    sections = _split_sections(text)
    values = _problem_values(_tokenise(sections["problem"]))
    values.update(_driver_values(_tokenise(sections["driver"])))
    base = ProblemSpec(**values)
    return base, _deck_axes(sections["study"])


def loads_study(text: str, name: str = "study") -> Study:
    """Parse a deck with a ``[study]`` section into a grid :class:`Study`.

    The problem keys define the base spec; every ``[study]`` axis line
    contributes one grid axis.  A deck without a ``[study]`` section yields
    a single-run study of the base problem.
    """
    base, axes = loads_study_parts(text)
    return Study.from_axes(base, axes, name=name)


def parse_study_deck(path: str | Path) -> Study:
    """Parse a study deck file into a :class:`repro.campaign.Study`."""
    return loads_study(Path(path).read_text(), name=Path(path).stem)


def spec_to_deck(spec: ProblemSpec) -> str:
    """Serialise a :class:`ProblemSpec` back into deck text (round-trippable)."""
    lines = [
        f"nx={spec.nx} ny={spec.ny} nz={spec.nz}",
        f"lx={spec.lx} ly={spec.ly} lz={spec.lz}",
        f"nang={spec.angles_per_octant} ng={spec.num_groups}",
        f"iitm={spec.num_inners} oitm={spec.num_outers}",
        f"epsi={spec.inner_tolerance}",
        f"order={spec.order} twist={spec.max_twist} twist_axis={spec.twist_axis}",
        f"scatp={spec.scattering_ratio} qsrc={spec.source_strength}",
        f"solver={spec.solver} engine={spec.engine}",
        f"octant_parallel={int(spec.octant_parallel)}",
        f"npex={spec.npex} npey={spec.npey}",
    ]
    # The cache budget is a problem-section key (elided at its 0 default so
    # pre-budget decks keep their exact text).
    if spec.factor_cache_budget_bytes != 0:
        lines.append(f"cache_budget={spec.factor_cache_budget_bytes}")
    # Driver fields ride in a [driver] section, elided at their defaults so
    # fixed-source decks keep their pre-driver text byte for byte.
    driver_lines = [
        f"{name}={getattr(spec, name)}"
        for name, default in _ELIDED_DEFAULTS
        if name != "factor_cache_budget_bytes" and getattr(spec, name) != default
    ]
    if driver_lines:
        lines.append("[driver]")
        lines.extend(driver_lines)
    lines.append("/")
    return "\n".join(lines)
