"""The verification suite facade: ``repro.verify.run_suite()``.

Bundles the four pillars -- manufactured-solution order checks
(:mod:`.mms`), the cross-engine conformance matrix (:mod:`.conformance`),
the golden regression store (:mod:`.golden`) and the analytic driver
benchmarks (:mod:`.drivers`) -- behind one call with a JSON-ready report,
mirroring how :func:`repro.run` fronts the solvers and
:func:`repro.run_study` fronts the campaign machinery.  The ``unsnap
verify`` CLI and the CI ``verify`` job are thin wrappers over this.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .conformance import ConformanceReport, conformance_matrix
from .drivers import DriverReport, run_driver_checks
from .golden import GoldenReport, bless_goldens, check_goldens
from .mms import OrderEstimate, default_problems, estimate_order

__all__ = ["SUITES", "VerificationReport", "run_suite"]

#: The suite names accepted by :func:`run_suite` and ``unsnap verify --suite``.
SUITES = ("mms", "conformance", "golden", "drivers")


@dataclass(frozen=True)
class VerificationReport:
    """Combined outcome of the requested verification suites.

    A suite that was not requested is ``None`` and does not influence
    :attr:`passed`.
    """

    mms: tuple[OrderEstimate, ...] | None = None
    conformance: ConformanceReport | None = None
    golden: GoldenReport | None = None
    drivers: DriverReport | None = None
    blessed: dict | None = None

    @property
    def passed(self) -> bool:
        if self.mms is not None and not all(e.passed for e in self.mms):
            return False
        if self.conformance is not None and not self.conformance.passed:
            return False
        if self.golden is not None and not self.golden.passed:
            return False
        if self.drivers is not None and not self.drivers.passed:
            return False
        return True

    def to_dict(self) -> dict:
        data: dict = {"passed": self.passed}
        if self.mms is not None:
            data["mms"] = [estimate.to_dict() for estimate in self.mms]
        if self.conformance is not None:
            data["conformance"] = self.conformance.to_dict()
        if self.golden is not None:
            data["golden"] = self.golden.to_dict()
        if self.drivers is not None:
            data["drivers"] = self.drivers.to_dict()
        if self.blessed is not None:
            data["blessed"] = {name: str(path) for name, path in self.blessed.items()}
        return data


def run_suite(
    suites: tuple[str, ...] | list[str] = SUITES,
    *,
    update_golden: bool = False,
    golden_dir: str | Path | None = None,
    mms_problems=None,
    conformance_spec=None,
    jobs: int | None = None,
) -> VerificationReport:
    """Run the requested verification suites and return the combined report.

    Parameters
    ----------
    suites:
        Any subset of :data:`SUITES`; order is irrelevant.
    update_golden:
        Re-bless the golden store before checking it.  The check then runs
        every case a second time against the records just written -- a
        deliberate run-to-run determinism gate at exactly the moment a new
        blessing is minted.  Requires the golden suite to be requested
        (silently blessing nothing would be worse than an error).
    golden_dir:
        Golden store location; defaults to the repository's
        ``tests/golden/`` (see :func:`.golden.default_golden_dir`).
    mms_problems:
        MMS problem instances; defaults to :func:`.mms.default_problems`.
    conformance_spec:
        Canonical conformance problem override.
    jobs:
        Worker cap forwarded to the conformance matrix's backends.
    """
    requested = {suite.lower() for suite in suites}
    unknown = requested - set(SUITES)
    if unknown:
        raise ValueError(f"unknown verification suite(s) {sorted(unknown)}; valid: {SUITES}")
    if update_golden and "golden" not in requested:
        raise ValueError(
            "update_golden=True but the golden suite was not requested; "
            "add 'golden' to the suites (CLI: --suite golden --update-golden)"
        )

    mms_result = None
    if "mms" in requested:
        problems = default_problems() if mms_problems is None else tuple(mms_problems)
        mms_result = tuple(estimate_order(problem) for problem in problems)

    conformance_result = None
    if "conformance" in requested:
        conformance_result = conformance_matrix(conformance_spec, jobs=jobs)

    golden_result = None
    blessed = None
    if "golden" in requested:
        if update_golden:
            blessed = bless_goldens(golden_dir=golden_dir)
        golden_result = check_goldens(golden_dir=golden_dir)

    drivers_result = None
    if "drivers" in requested:
        drivers_result = run_driver_checks()

    return VerificationReport(
        mms=mms_result,
        conformance=conformance_result,
        golden=golden_result,
        drivers=drivers_result,
        blessed=blessed,
    )
