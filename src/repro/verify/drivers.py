"""Driver verification: analytic benchmarks for the outer-loop drivers.

Two closed-form problems pin the :mod:`repro.drivers` subsystem to physics
rather than to goldens:

**Infinite-medium k-infinity.**  On a fully reflected (infinite-medium)
homogeneous problem the transport eigenproblem collapses to the zero-
dimensional balance whose eigenvalue is the analytic
:meth:`~repro.materials.cross_sections.CrossSections.k_infinity` --
``nu_sigma_f^T (diag(sigma_t) - S^T)^{-1} chi``.  The power iteration of the
``k_eigenvalue`` driver, run on a spatially-flat reflected mesh, must
reproduce it to 1e-8 (:func:`k_infinity_check`); in practice it lands at
solver tolerance, ~1e-13.

**Backward-Euler decay order.**  On a reflected, source-free pure absorber
with a flat initial condition the analytic solution is the exponential decay
``phi_g(t) = phi0 exp(-v_g sigma_g t)`` while backward Euler produces
``phi0 (1 + v_g sigma_g dt)^{-n}`` -- a first-order-in-``dt`` approximation.
:func:`decay_order_check` halves ``dt`` at fixed final time (the ``dt``
sequence is an ordinary :meth:`Study.grid <repro.campaign.study.Study.grid>`
axis) and asserts the observed convergence order is 1 within the same band
the MMS suite uses for spatial orders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..campaign.study import Study
from ..config import BoundaryCondition, ProblemSpec
from ..materials.library import snap_driver_library
from ..runner import run
from .mms import MMS_ORDER_TOLERANCE

__all__ = [
    "KInfinityCheck",
    "DecayOrderCheck",
    "DriverReport",
    "k_infinity_check",
    "decay_order_check",
    "run_driver_checks",
    "K_INFINITY_TOLERANCE",
]

#: Acceptance band on ``|k_computed - k_infinity|`` (the issue's contract;
#: the flat reflected problem actually converges to ~1e-13).
K_INFINITY_TOLERANCE = 1e-8


def _reflected_spec(**overrides) -> ProblemSpec:
    """The smallest spatially-flat reflected problem: 2^3 untwisted cells.

    With ``max_twist=0`` every cell is a unit-ratio hexahedron, so a flat
    flux is an exact discrete solution and the drivers' iterates stay flat
    to machine precision -- the analytic zero-dimensional answers apply to
    the full 3-D solve, not just asymptotically.
    """
    base = dict(
        nx=2, ny=2, nz=2,
        max_twist=0.0,
        order=1,
        angles_per_octant=1,
        num_inners=50,
        num_outers=1,
        inner_tolerance=1e-13,
        boundary=BoundaryCondition(kind="reflective"),
    )
    base.update(overrides)
    return ProblemSpec(**base)


@dataclass(frozen=True)
class KInfinityCheck:
    """Outcome of the infinite-medium k-eigenvalue benchmark."""

    k_computed: float
    k_analytic: float
    power_iterations: int
    converged: bool
    tolerance: float = K_INFINITY_TOLERANCE

    @property
    def error(self) -> float:
        return abs(self.k_computed - self.k_analytic)

    @property
    def passed(self) -> bool:
        return self.converged and self.error <= self.tolerance

    def to_dict(self) -> dict:
        return {
            "k_computed": self.k_computed,
            "k_analytic": self.k_analytic,
            "error": self.error,
            "power_iterations": self.power_iterations,
            "converged": self.converged,
            "tolerance": self.tolerance,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class DecayOrderCheck:
    """Outcome of the backward-Euler temporal convergence benchmark.

    ``observed_order`` is the finest-pair estimate of the slope of
    ``log(error)`` against ``log(dt)``; backward Euler must show 1.
    """

    t_end: float
    dts: tuple[float, ...]
    errors: tuple[float, ...]
    pairwise_orders: tuple[float, ...]
    observed_order: float
    theoretical_order: float = 1.0
    tolerance: float = MMS_ORDER_TOLERANCE

    @property
    def passed(self) -> bool:
        return abs(self.observed_order - self.theoretical_order) <= self.tolerance

    def to_dict(self) -> dict:
        return {
            "t_end": self.t_end,
            "dts": list(self.dts),
            "errors": list(self.errors),
            "pairwise_orders": list(self.pairwise_orders),
            "observed_order": self.observed_order,
            "theoretical_order": self.theoretical_order,
            "tolerance": self.tolerance,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class DriverReport:
    """Combined outcome of the driver verification suite."""

    k_infinity: KInfinityCheck
    decay: DecayOrderCheck

    @property
    def passed(self) -> bool:
        return self.k_infinity.passed and self.decay.passed

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "k_infinity": self.k_infinity.to_dict(),
            "decay": self.decay.to_dict(),
        }


def k_infinity_check(
    *,
    num_groups: int = 3,
    scattering_ratio: float = 0.5,
    tolerance: float = K_INFINITY_TOLERANCE,
) -> KInfinityCheck:
    """Run the ``k_eigenvalue`` driver on the reflected flat problem.

    The analytic reference is material data's own
    :meth:`~repro.materials.cross_sections.CrossSections.k_infinity` (for
    the default driver library it is exactly ``0.6`` for every group count).
    """
    spec = _reflected_spec(
        num_groups=num_groups,
        scattering_ratio=scattering_ratio,
        driver="k_eigenvalue",
        k_tolerance=1e-10,
        max_power_iters=100,
    )
    library = snap_driver_library(num_groups, scattering_ratio)
    result = run(spec)
    return KInfinityCheck(
        k_computed=result.k_effective,
        k_analytic=library.materials[0].k_infinity(),
        power_iterations=len(result.k_history),
        converged=result.history.converged,
        tolerance=tolerance,
    )


def decay_order_check(
    *,
    num_groups: int = 2,
    t_end: float = 0.8,
    dts: tuple[float, ...] = (0.4, 0.2, 0.1),
    tolerance: float = MMS_ORDER_TOLERANCE,
) -> DecayOrderCheck:
    """Run the ``time_dependent`` driver at shrinking ``dt``, fixed ``t_end``.

    The ``dt`` refinement is expressed as a one-axis
    :meth:`Study.grid <repro.campaign.study.Study.grid>` -- temporal
    refinement is ordinary campaign machinery, exactly like the MMS suite's
    spatial refinement.  The error is the worst relative group error of the
    final mean flux against ``phi0 exp(-v_g sigma_g t_end)``.
    """
    if len(dts) < 2:
        raise ValueError("decay_order_check needs at least two step sizes")
    if sorted(dts, reverse=True) != list(dts) or len(set(dts)) != len(dts):
        raise ValueError(f"dts must be strictly decreasing, got {dts}")
    base = _reflected_spec(
        num_groups=num_groups,
        scattering_ratio=0.0,
        source_strength=0.0,
        driver="time_dependent",
        t_end=t_end,
        initial_flux_value=1.0,
        num_inners=30,
    )
    material = snap_driver_library(num_groups, 0.0).materials[0]
    exact = np.exp(-material.velocity * material.sigma_t * t_end)  # phi0 = 1

    errors = []
    for point in Study.grid(base, dt=list(dts), name="decay-order").runs():
        result = run(point.spec)
        final = np.asarray(result.step_mean_flux[-1])
        errors.append(float(np.max(np.abs(final - exact) / exact)))

    pairwise = [
        float(np.log(errors[i] / errors[i + 1]) / np.log(dts[i] / dts[i + 1]))
        for i in range(len(dts) - 1)
    ]
    return DecayOrderCheck(
        t_end=t_end,
        dts=tuple(dts),
        errors=tuple(errors),
        pairwise_orders=tuple(pairwise),
        observed_order=pairwise[-1],
        tolerance=tolerance,
    )


def run_driver_checks() -> DriverReport:
    """The driver benchmarks run by ``unsnap verify --suite drivers``."""
    return DriverReport(k_infinity=k_infinity_check(), decay=decay_order_check())
