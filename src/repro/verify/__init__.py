"""Verification subsystem: the machine-checked contract behind every fast path.

Three pillars, one suite (:func:`repro.verify.run_suite`, CLI ``unsnap
verify``):

* **Manufactured solutions** (:mod:`.mms`) -- analytic-source problems with
  known solutions and :func:`~.mms.estimate_order`, which refines the mesh
  through a :class:`repro.campaign.Study` and asserts the observed spatial
  convergence order for both the DGFEM solver and the diamond-difference FD
  baseline.
* **Conformance matrix** (:mod:`.conformance`) -- one canonical problem run
  across every registered engine x solver x backend x parallel-mode
  combination (discovered via the registries), with a global deviation
  tolerance and exact bit-for-bit classes (batched engine family under
  exact solvers, thread determinism, backend invariance).
* **Golden store** (:mod:`.golden`) -- blessed
  :class:`~repro.runner.RunResult` snapshots in ``tests/golden/``, stored
  through the content-hashed campaign :class:`~repro.campaign.ResultStore`
  and compared bit for bit; ``unsnap verify --update-golden`` re-blesses
  deterministically.
* **Driver benchmarks** (:mod:`.drivers`) -- closed-form checks of the
  outer-loop drivers: the ``k_eigenvalue`` power iteration against the
  analytic infinite-medium k-infinity (1e-8) and the ``time_dependent``
  backward-Euler stepping against analytic exponential decay (observed
  first order in ``dt``).

The contract a **new engine** (or solver/backend) must satisfy is spelled
out in ROADMAP.md; registering it is enough to be swept into the MMS and
conformance suites on the next ``unsnap verify``.
"""

from .conformance import (
    CONFORMANCE_TOLERANCE,
    BitwiseCheck,
    ConformanceCase,
    ConformanceReport,
    canonical_spec,
    conformance_matrix,
)
from .golden import (
    GoldenCase,
    GoldenCaseResult,
    GoldenReport,
    bless_goldens,
    check_goldens,
    default_golden_cases,
    default_golden_dir,
    normalise_result,
)
from .drivers import (
    K_INFINITY_TOLERANCE,
    DecayOrderCheck,
    DriverReport,
    KInfinityCheck,
    decay_order_check,
    k_infinity_check,
    run_driver_checks,
)
from .mms import (
    MMS_ORDER_TOLERANCE,
    FdMMSProblem,
    FemMMSProblem,
    ManufacturedField,
    OrderEstimate,
    default_problems,
    estimate_order,
)
from .suite import SUITES, VerificationReport, run_suite

__all__ = [
    "run_suite",
    "SUITES",
    "VerificationReport",
    # mms
    "estimate_order",
    "OrderEstimate",
    "ManufacturedField",
    "FemMMSProblem",
    "FdMMSProblem",
    "default_problems",
    "MMS_ORDER_TOLERANCE",
    # conformance
    "conformance_matrix",
    "ConformanceReport",
    "ConformanceCase",
    "BitwiseCheck",
    "canonical_spec",
    "CONFORMANCE_TOLERANCE",
    # drivers
    "run_driver_checks",
    "k_infinity_check",
    "decay_order_check",
    "DriverReport",
    "KInfinityCheck",
    "DecayOrderCheck",
    "K_INFINITY_TOLERANCE",
    # golden
    "GoldenCase",
    "GoldenCaseResult",
    "GoldenReport",
    "default_golden_cases",
    "default_golden_dir",
    "normalise_result",
    "bless_goldens",
    "check_goldens",
]
