"""Golden regression store: blessed run results under ``tests/golden/``.

A *golden* is a blessed :class:`~repro.runner.RunResult` snapshot of one
canonical run, stored through the campaign
:class:`~repro.campaign.store.ResultStore` (same content-hashed one-JSON-
per-run format, same atomic publish), so the golden directory is an
ordinary, portable result store that happens to live in the repository.

Blessing normalises away the only non-deterministic payload -- wall-clock
timings -- before writing, so re-blessing an unchanged build rewrites
byte-identical files (``git status`` stays clean), while *any* numeric
drift in the flux, leakage, balance or iteration history -- down to one ulp
-- shows up as a mismatch in :func:`check_goldens` (and as a diff when
re-blessed).

``unsnap verify --suite golden`` runs the check; ``--update-golden``
re-blesses after a reviewed, intentional numeric change.

Bit-for-bit snapshots necessarily pin the *arithmetic of the blessing
environment*: a different BLAS/LAPACK build or CPU kernel selection may
legitimately flip low-order bits (the ``lapack`` solver path especially).
On such a platform the goldens are expected to mismatch once -- re-bless
them there and the store is pinned to that environment instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from ..campaign.store import GOLDEN_MARKER as _GOLDEN_MARKER
from ..campaign.store import ResultStore, run_key
from ..config import BoundaryCondition, ProblemSpec
from ..core.assembly import AssemblyTimings
from ..runner import RunResult, run
from .conformance import canonical_spec

__all__ = [
    "GoldenCase",
    "GoldenCaseResult",
    "GoldenReport",
    "default_golden_cases",
    "default_golden_dir",
    "normalise_result",
    "bless_goldens",
    "check_goldens",
]

#: Environment override for the golden directory (CI, out-of-tree checkouts).
GOLDEN_DIR_ENV = "UNSNAP_GOLDEN_DIR"


def default_golden_dir() -> Path:
    """The blessed store location: ``tests/golden/`` at the repository root."""
    override = os.environ.get(GOLDEN_DIR_ENV)
    if override:
        return Path(override)
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / "tests" / "golden"
    if candidate.parent.is_dir():
        return candidate
    return Path("tests") / "golden"


@dataclass(frozen=True)
class GoldenCase:
    """One blessed run: a name, a spec and its run options."""

    name: str
    spec: ProblemSpec
    run_options: tuple[tuple[str, object], ...] = ()

    @property
    def options(self) -> dict:
        return dict(self.run_options)

    @property
    def key(self) -> str:
        return run_key(self.spec, self.options)


def default_golden_cases() -> tuple[GoldenCase, ...]:
    """The blessed matrix: one case per execution path worth pinning.

    Every fixed-source case shares the canonical conformance problem so a
    regression in the shared numerics shows up everywhere, while the
    per-case axes pin each engine, the LAPACK solver path, the
    octant-parallel reduction and the block-Jacobi driver individually.
    The two driver cases pin the ``k_eigenvalue`` and ``time_dependent``
    outer loops (their flux *and* their k-history / step-history payloads)
    on a small reflected problem.
    """
    base = canonical_spec()
    reflected = ProblemSpec(
        nx=2, ny=2, nz=2,
        max_twist=0.0,
        angles_per_octant=1,
        num_groups=2,
        num_inners=20,
        inner_tolerance=1e-12,
        boundary=BoundaryCondition(kind="reflective"),
    )
    return (
        GoldenCase("reference-ge", base.with_(engine="reference")),
        GoldenCase("vectorized-ge", base.with_(engine="vectorized")),
        GoldenCase(
            "prefactorized-lapack", base.with_(engine="prefactorized", solver="lapack")
        ),
        GoldenCase(
            "octant-parallel",
            base.with_(engine="vectorized", octant_parallel=True),
            (("num_threads", 2),),
        ),
        GoldenCase("block-jacobi-2x1", base.with_(npex=2)),
        GoldenCase(
            "driver-k-eigenvalue",
            reflected.with_(driver="k_eigenvalue", k_tolerance=1e-8, max_power_iters=30),
        ),
        GoldenCase(
            "driver-time-dependent",
            reflected.with_(
                driver="time_dependent", dt=0.25, n_steps=4, initial_flux_value=1.0
            ),
        ),
    )


def normalise_result(result: RunResult) -> RunResult:
    """Zero the wall-clock fields so blessed payloads are deterministic.

    Everything else in the export -- flux arrays, leakage, balance,
    iteration history, ``systems_solved`` -- is a pure function of the spec,
    so the serialised record is byte-stable across re-blessings.
    """
    return replace(
        result,
        setup_seconds=0.0,
        solve_seconds=0.0,
        timings=AssemblyTimings(
            assembly_seconds=0.0,
            solve_seconds=0.0,
            systems_solved=result.timings.systems_solved,
        ),
    )


# Marker file identifying a directory as a curated golden store.  Pruning
# stale records is destructive, so it only happens in directories blessed
# from scratch or carrying the marker -- never in an arbitrary
# ``ResultStore`` someone pointed ``--golden-dir`` at by mistake.  The
# constant lives on the store (``unsnap store gc`` refuses marked
# directories for the same reason); re-exported here for compatibility.
GOLDEN_MARKER = _GOLDEN_MARKER


def bless_goldens(
    cases: tuple[GoldenCase, ...] | None = None,
    golden_dir: str | Path | None = None,
) -> dict[str, Path]:
    """Run every case and (re-)write its blessed record; prune stale records.

    Returns the written path per case name.  Records whose content key no
    longer matches any case (a changed canonical spec, a removed case) are
    deleted so the directory always mirrors the current case list exactly --
    but only in directories this function owns: ones that were empty when
    first blessed, or that carry the :data:`GOLDEN_MARKER` file.  Pointing
    ``--golden-dir`` at an ordinary campaign store therefore adds records
    (and the stale-key check flags the foreign ones) instead of silently
    destroying computed results.
    """
    cases = default_golden_cases() if cases is None else tuple(cases)
    store = ResultStore(default_golden_dir() if golden_dir is None else golden_dir)
    marker = store.root / GOLDEN_MARKER
    owns_directory = marker.exists() or not store.keys()
    written: dict[str, Path] = {}
    for case in cases:
        result = run(case.spec, **case.options)
        written[case.name] = store.put(case.spec, normalise_result(result), case.options)
    if owns_directory:
        marker.touch()
        expected = {case.key for case in cases}
        for stale in set(store.keys()) - expected:
            store.path_for(stale).unlink()
    return written


@dataclass(frozen=True)
class GoldenCaseResult:
    """Outcome of re-running one blessed case."""

    name: str
    status: str  # "match" | "mismatch" | "missing" | "corrupt"
    detail: str = ""
    max_deviation: float | None = None

    @property
    def passed(self) -> bool:
        return self.status == "match"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "max_deviation": self.max_deviation,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class GoldenReport:
    """Outcome of checking every blessed case against a fresh run."""

    golden_dir: str
    results: tuple[GoldenCaseResult, ...]
    stale_keys: tuple[str, ...]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results) and not self.stale_keys

    def to_dict(self) -> dict:
        return {
            "golden_dir": self.golden_dir,
            "cases": [r.to_dict() for r in self.results],
            "stale_keys": list(self.stale_keys),
            "passed": self.passed,
        }


#: Array fields compared bit for bit between the fresh and the blessed run.
_ARRAY_FIELDS = ("scalar_flux", "cell_average_flux", "leakage")
#: Per-group balance arrays, compared bit for bit as well.
_BALANCE_FIELDS = ("emission", "absorption", "leakage", "scattering_in", "scattering_out")


def _compare(fresh: RunResult, stored: RunResult) -> tuple[str, float | None]:
    """Bit-for-bit comparison; returns ``(detail, max_deviation)``, empty=match."""
    worst: float | None = None
    mismatched: list[str] = []
    pairs = [
        (name, getattr(fresh, name), getattr(stored, name)) for name in _ARRAY_FIELDS
    ] + [
        (f"balance.{name}", getattr(fresh.balance, name), getattr(stored.balance, name))
        for name in _BALANCE_FIELDS
    ]
    for field_name, a, b in pairs:
        a, b = np.asarray(a), np.asarray(b)
        if a.shape != b.shape:
            return f"{field_name} shape {a.shape} != blessed {b.shape}", None
        if not np.array_equal(a, b):
            deviation = float(np.max(np.abs(a - b)))
            worst = deviation if worst is None else max(worst, deviation)
            mismatched.append(field_name)
    if fresh.history.inner_errors != stored.history.inner_errors:
        mismatched.append("history.inner_errors")
    if fresh.history.outer_errors != stored.history.outer_errors:
        mismatched.append("history.outer_errors")
    if fresh.timings.systems_solved != stored.timings.systems_solved:
        mismatched.append("timings.systems_solved")
    # Driver payloads: exact float(-list) equality, same bit-for-bit bar as
    # the flux arrays (None on both sides for the fixed-source cases).
    for field_name in ("k_effective", "k_history", "times", "step_mean_flux"):
        if getattr(fresh, field_name) != getattr(stored, field_name):
            mismatched.append(field_name)
    if mismatched:
        return "mismatch in " + ", ".join(mismatched), worst
    return "", None


def check_goldens(
    cases: tuple[GoldenCase, ...] | None = None,
    golden_dir: str | Path | None = None,
) -> GoldenReport:
    """Re-run every blessed case and compare against the stored record.

    The comparison is *exact* (``np.array_equal`` on the flux, cell-average
    and leakage arrays, list equality on the iteration history): a 1-ulp
    perturbation anywhere fails the case.  Records in the store that belong
    to no case are reported as ``stale_keys`` and fail the suite -- the
    golden directory is curated, not append-only.
    """
    cases = default_golden_cases() if cases is None else tuple(cases)
    root = Path(default_golden_dir() if golden_dir is None else golden_dir)
    store = ResultStore(root)
    results: list[GoldenCaseResult] = []
    for case in cases:
        try:
            stored = store.get(case.spec, case.options)
        except ValueError as exc:
            # A damaged record is a failing case, not a crashed suite: the
            # report (and its JSON export) still covers every other case.
            results.append(
                GoldenCaseResult(name=case.name, status="corrupt", detail=str(exc))
            )
            continue
        if stored is None:
            results.append(
                GoldenCaseResult(
                    name=case.name,
                    status="missing",
                    detail="no blessed record; run `unsnap verify --suite golden "
                    "--update-golden` to bless",
                )
            )
            continue
        fresh = normalise_result(run(case.spec, **case.options))
        detail, deviation = _compare(fresh, stored)
        if detail:
            results.append(
                GoldenCaseResult(
                    name=case.name,
                    status="mismatch",
                    detail=detail,
                    max_deviation=deviation,
                )
            )
        else:
            results.append(GoldenCaseResult(name=case.name, status="match"))
    stale = tuple(sorted(set(store.keys()) - {case.key for case in cases}))
    return GoldenReport(golden_dir=str(root), results=tuple(results), stale_keys=stale)
