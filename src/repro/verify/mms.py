"""Method-of-manufactured-solutions convergence-order verification.

A manufactured solution turns "the numbers look right" into a measurable
contract: pick a smooth angular flux ``psi(x, Omega) = u(x)`` that vanishes
on the domain boundary (so the vacuum boundary condition is exact), inject
the per-ordinate source the transport equation demands of it,

.. math::

    q_a(x) = \\Omega_a \\cdot \\nabla u + \\sigma_t u
    \\qquad (\\sigma_s = 0),

and measure the L2 error of the computed scalar flux against the analytic
``u`` on a sequence of refined meshes.  The error must shrink at the
discretisation's theoretical order -- 2 for the diamond-difference FD
baseline and ``p + 1`` for order-``p`` DG finite elements -- and
:func:`estimate_order` asserts exactly that, refining the mesh through a
:class:`repro.campaign.Study` so the refinement axis is ordinary campaign
machinery.

The per-ordinate source rides the ``angular_source`` hook threaded through
:func:`repro.run` / :meth:`SweepExecutor.sweep
<repro.core.sweep.SweepExecutor.sweep>` (FEM) and
:class:`~repro.baseline.snap_fd.SnapDiamondDifferenceSolver` (FD), so every
registered sweep engine and local solver runs MMS problems unchanged -- a
new engine inherits the order check for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..angular.quadrature import snap_dummy_quadrature
from ..baseline.snap_fd import SnapDiamondDifferenceSolver
from ..campaign.study import Study
from ..config import ProblemSpec
from ..fem.element import HexElementFactors, trilinear_shape
from ..fem.reference import ReferenceElement
from ..materials.library import snap_option1_materials
from ..mesh.builder import StructuredGridSpec, build_snap_mesh
from ..runner import run

__all__ = [
    "ManufacturedField",
    "FemMMSProblem",
    "FdMMSProblem",
    "OrderEstimate",
    "estimate_order",
    "default_problems",
    "MMS_ORDER_TOLERANCE",
]

#: Acceptance band on ``|observed - theoretical|`` convergence order.
MMS_ORDER_TOLERANCE = 0.2


@dataclass(frozen=True)
class ManufacturedField:
    """The manufactured scalar field ``u(x) = prod_d sin(pi x_d / L_d)``.

    Smooth everywhere and zero on the boundary of ``[0, lx] x [0, ly] x
    [0, lz]``, so the vacuum boundary condition holds exactly and no
    characteristic kinks (which would degrade the observed order) enter the
    domain.
    """

    extents: tuple[float, float, float] = (1.0, 1.0, 1.0)

    def value(self, xyz: np.ndarray) -> np.ndarray:
        """``u`` at points of shape ``(..., 3)``."""
        k = np.pi / np.asarray(self.extents)
        return np.prod(np.sin(k * xyz), axis=-1)

    def gradient(self, xyz: np.ndarray) -> np.ndarray:
        """``grad u`` at points of shape ``(..., 3)`` (same shape out)."""
        k = np.pi / np.asarray(self.extents)
        s = np.sin(k * xyz)
        c = np.cos(k * xyz)
        grad = np.empty_like(np.asarray(xyz, dtype=float))
        grad[..., 0] = k[0] * c[..., 0] * s[..., 1] * s[..., 2]
        grad[..., 1] = k[1] * s[..., 0] * c[..., 1] * s[..., 2]
        grad[..., 2] = k[2] * s[..., 0] * s[..., 1] * c[..., 2]
        return grad

    def angular_source(
        self, xyz: np.ndarray, directions: np.ndarray, sigma_t: np.ndarray
    ) -> np.ndarray:
        """``q_a = Omega_a . grad u + sigma_t[g] u`` for every ordinate/group.

        ``xyz`` has shape ``(..., 3)``; the result has shape
        ``(A, ..., G)`` for ``A`` directions and ``G`` groups.
        """
        u = self.value(xyz)
        grad = self.gradient(xyz)
        streaming = np.einsum("ad,...d->a...", np.asarray(directions), grad)
        sigma_t = np.asarray(sigma_t, dtype=float)
        return streaming[..., None] + sigma_t * u[None, ..., None]


def _pure_absorber_spec(spec: ProblemSpec) -> ProblemSpec:
    """Restrict a spec to the exactly-solvable MMS configuration."""
    return spec.with_(
        scattering_ratio=0.0,
        source_strength=0.0,
        num_inners=1,
        num_outers=1,
        inner_tolerance=0.0,
        outer_tolerance=0.0,
    )


@dataclass(frozen=True)
class FemMMSProblem:
    """Manufactured-solution problem for the DGFEM discretisation.

    With ``sigma_s = 0`` the transport equation decouples per angle and the
    single sweep of a 1-inner/1-outer solve *is* the exact discrete
    solution, so the measured error is pure discretisation error.  The L2
    norm is evaluated at the volume quadrature points (not the nodes, whose
    error superconverges), so the theoretical order is the textbook
    ``p + 1``.
    """

    order: int = 1
    angles_per_octant: int = 1
    engine: str = "vectorized"
    solver: str = "ge"
    field: ManufacturedField = ManufacturedField()

    @property
    def name(self) -> str:
        return f"mms-fem-p{self.order}"

    @property
    def discretisation(self) -> str:
        return "fem"

    @property
    def theoretical_order(self) -> float:
        return float(self.order + 1)

    @property
    def resolutions(self) -> tuple[int, ...]:
        # Coarser meshes suffice at higher order (the error floor arrives
        # sooner and cubic elements are expensive).
        return (4, 6, 8) if self.order == 1 else (2, 3, 4)

    def base_spec(self) -> ProblemSpec:
        return _pure_absorber_spec(
            ProblemSpec(
                nx=self.resolutions[0],
                ny=self.resolutions[0],
                nz=self.resolutions[0],
                order=self.order,
                angles_per_octant=self.angles_per_octant,
                num_groups=1,
                max_twist=0.0,
                engine=self.engine,
                solver=self.solver,
            )
        )

    def refinement_study(self, resolutions: tuple[int, ...]) -> Study:
        res = list(resolutions)
        return Study.zip(self.base_spec(), nx=res, ny=res, nz=res, name=self.name)

    def solve_error(self, spec: ProblemSpec) -> float:
        """L2 error of the computed scalar flux on one mesh of the sequence."""
        mesh = build_snap_mesh(
            StructuredGridSpec(spec.nx, spec.ny, spec.nz, spec.lx, spec.ly, spec.lz),
            max_twist=spec.max_twist,
            twist_axis=spec.twist_axis,
        )
        ref = ReferenceElement(spec.order)
        factors = HexElementFactors.build(mesh.cell_vertices(), ref)
        verts = mesh.cell_vertices()  # (E, 8, 3)
        quadrature = snap_dummy_quadrature(spec.angles_per_octant)
        sigma_t = snap_option1_materials(spec.num_groups, spec.scattering_ratio).sigma_t

        # Per-ordinate manufactured source at the element nodes, (A, E, G, N).
        node_xyz = np.einsum("nv,evd->end", trilinear_shape(ref.basis.node_coords), verts)
        source = self.field.angular_source(node_xyz, quadrature.directions, sigma_t)
        angular_source = np.moveaxis(source, -1, 2)  # (A, E, N, G) -> (A, E, G, N)

        result = run(spec, angular_source=angular_source)

        # True L2 error at the volume quadrature points of every element.
        quad_xyz = np.einsum("qv,evd->eqd", trilinear_shape(ref.volume_rule.points), verts)
        exact = self.field.value(quad_xyz)  # (E, Q)
        err2 = 0.0
        for g in range(spec.num_groups):
            computed = np.einsum("qn,en->eq", ref.phi_vol, result.scalar_flux[:, g, :])
            err2 += float(np.einsum("eq,eq->", factors.vol_weights, (computed - exact) ** 2))
        return float(np.sqrt(err2))


@dataclass(frozen=True)
class FdMMSProblem:
    """Manufactured-solution problem for the diamond-difference FD baseline.

    The cell-centred update is second-order accurate for smooth solutions;
    the error is measured in the cell-centred discrete L2 norm against the
    manufactured field at the cell centres.
    """

    angles_per_octant: int = 1
    field: ManufacturedField = ManufacturedField()

    @property
    def name(self) -> str:
        return "mms-fd"

    @property
    def discretisation(self) -> str:
        return "fd"

    @property
    def theoretical_order(self) -> float:
        return 2.0

    @property
    def resolutions(self) -> tuple[int, ...]:
        return (8, 16, 32)

    def base_spec(self) -> ProblemSpec:
        return _pure_absorber_spec(
            ProblemSpec(
                nx=self.resolutions[0],
                ny=self.resolutions[0],
                nz=self.resolutions[0],
                angles_per_octant=self.angles_per_octant,
                num_groups=1,
                max_twist=0.0,
            )
        )

    def refinement_study(self, resolutions: tuple[int, ...]) -> Study:
        res = list(resolutions)
        return Study.zip(self.base_spec(), nx=res, ny=res, nz=res, name=self.name)

    def solve_error(self, spec: ProblemSpec) -> float:
        quadrature = snap_dummy_quadrature(spec.angles_per_octant)
        xs = snap_option1_materials(spec.num_groups, spec.scattering_ratio)
        dx, dy, dz = spec.lx / spec.nx, spec.ly / spec.ny, spec.lz / spec.nz
        centres = np.stack(
            np.meshgrid(
                (np.arange(spec.nx) + 0.5) * dx,
                (np.arange(spec.ny) + 0.5) * dy,
                (np.arange(spec.nz) + 0.5) * dz,
                indexing="ij",
            ),
            axis=-1,
        )  # (nx, ny, nz, 3)
        angular_source = self.field.angular_source(
            centres, quadrature.directions, xs.sigma_t
        )  # (A, nx, ny, nz, G)

        fd = SnapDiamondDifferenceSolver(
            spec.nx, spec.ny, spec.nz,
            lx=spec.lx, ly=spec.ly, lz=spec.lz,
            cross_sections=xs,
            quadrature=quadrature,
            source_strength=spec.source_strength,
            num_inners=spec.num_inners,
            num_outers=spec.num_outers,
            angular_source=angular_source,
        )
        result = fd.solve()
        exact = self.field.value(centres)  # (nx, ny, nz)
        err2 = float(
            np.sum((result.scalar_flux - exact[..., None]) ** 2) * dx * dy * dz
        )
        return float(np.sqrt(err2))


@dataclass(frozen=True)
class OrderEstimate:
    """Outcome of one convergence-order study.

    ``observed_order`` is the finest-pair estimate (the closest to the
    asymptotic regime); ``fitted_order`` is the least-squares slope of
    ``log(error)`` against ``log(h)`` over the whole sequence, reported for
    context.
    """

    problem: str
    discretisation: str
    theoretical_order: float
    resolutions: tuple[int, ...]
    cell_sizes: tuple[float, ...]
    errors: tuple[float, ...]
    pairwise_orders: tuple[float, ...]
    observed_order: float
    fitted_order: float
    tolerance: float = MMS_ORDER_TOLERANCE

    @property
    def passed(self) -> bool:
        return abs(self.observed_order - self.theoretical_order) <= self.tolerance

    def to_dict(self) -> dict:
        return {
            "problem": self.problem,
            "discretisation": self.discretisation,
            "theoretical_order": self.theoretical_order,
            "resolutions": list(self.resolutions),
            "cell_sizes": list(self.cell_sizes),
            "errors": list(self.errors),
            "pairwise_orders": list(self.pairwise_orders),
            "observed_order": self.observed_order,
            "fitted_order": self.fitted_order,
            "tolerance": self.tolerance,
            "passed": self.passed,
        }


def estimate_order(problem, resolutions=None, tolerance: float = MMS_ORDER_TOLERANCE):
    """Run a mesh-refinement study and estimate the convergence order.

    The refinement axis is built by the problem as a
    :class:`repro.campaign.Study` (``Study.zip`` over ``nx``/``ny``/``nz``),
    so the sequence of specs flows through the same machinery as any other
    campaign; each point is solved by the problem's ``solve_error`` and the
    observed order is the finest-pair slope of ``log(error)`` vs ``log(h)``.
    """
    resolutions = tuple(resolutions if resolutions is not None else problem.resolutions)
    if len(resolutions) < 2:
        raise ValueError("estimate_order needs at least two mesh resolutions")
    if sorted(resolutions) != list(resolutions) or len(set(resolutions)) != len(resolutions):
        raise ValueError(f"resolutions must be strictly increasing, got {resolutions}")

    study = problem.refinement_study(resolutions)
    points = study.runs()
    errors = [problem.solve_error(point.spec) for point in points]
    cell_sizes = [point.spec.lx / point.spec.nx for point in points]

    pairwise = [
        float(np.log(errors[i] / errors[i + 1]) / np.log(cell_sizes[i] / cell_sizes[i + 1]))
        for i in range(len(errors) - 1)
    ]
    fitted = float(np.polyfit(np.log(cell_sizes), np.log(errors), 1)[0])
    return OrderEstimate(
        problem=problem.name,
        discretisation=problem.discretisation,
        theoretical_order=float(problem.theoretical_order),
        resolutions=resolutions,
        cell_sizes=tuple(float(h) for h in cell_sizes),
        errors=tuple(float(e) for e in errors),
        pairwise_orders=tuple(pairwise),
        observed_order=pairwise[-1],
        fitted_order=fitted,
        tolerance=float(tolerance),
    )


def default_problems() -> tuple:
    """The MMS problems run by ``unsnap verify --suite mms``."""
    return (FemMMSProblem(order=1), FemMMSProblem(order=2), FdMMSProblem())
