"""Cross-engine / solver / backend / parallel-mode conformance matrix.

One canonical problem is run across **every registered combination** --
sweep engines x local solvers x octant-parallel modes x thread counts,
executed once per registered campaign backend -- with the combinations
discovered through the registries, never hard-coded.  A newly registered
engine, solver or backend is therefore covered by ``unsnap verify --suite
conformance`` the moment it registers.

Two kinds of contract are checked:

* **Tolerance**: the maximum pairwise deviation of the scalar flux over the
  whole matrix must stay below a tight absolute tolerance (the paths differ
  only by floating-point associativity).
* **Bit-for-bit classes**, asserted *exactly* (equal SHA-256 of the flux
  bytes):

  - *backend invariance* -- every backend (serial, thread, process, ...)
    returns identical bytes for the same run;
  - *thread determinism* -- a run is identical whatever ``num_threads``
    (octant-parallel included: its fixed reduction order is the contract);
  - *engine families* -- engines sharing a ``bitwise_family`` attribute
    (``vectorized`` / ``prefactorized``) are identical under any solver
    whose factored path is exact (``LocalSolver.prefactorisation_exact``,
    e.g. ``ge``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..campaign.runner import run_study
from ..campaign.study import Study
from ..config import ProblemSpec
from ..engines.registry import available_engines, get_engine
from ..solvers.registry import available_solvers, get_solver

__all__ = [
    "CONFORMANCE_TOLERANCE",
    "canonical_spec",
    "ConformanceCase",
    "BitwiseCheck",
    "ConformanceReport",
    "conformance_matrix",
]

#: Absolute flux tolerance over the whole matrix (observed ~6e-16; any real
#: divergence between execution paths is many orders of magnitude larger).
CONFORMANCE_TOLERANCE = 1e-12


def case_label(
    engine: str, solver: str, octant_parallel: bool, num_threads: int, backend: str
) -> str:
    """The canonical display label of one matrix cell (single source of truth)."""
    mode = "octant" if octant_parallel else "sweep"
    return f"{engine}/{solver}/{mode}/t{num_threads}/{backend}"


def canonical_spec() -> ProblemSpec:
    """The canonical conformance problem: small but fully featured.

    Multi-group with scattering, a twisted mesh, several angles per octant
    (so octant-parallel reductions actually reduce) and two inners (so
    factor caches are actually reused).
    """
    return ProblemSpec(
        nx=3, ny=3, nz=3,
        angles_per_octant=2,
        num_groups=2,
        max_twist=0.001,
        num_inners=2,
        num_outers=1,
    )


@dataclass(frozen=True)
class ConformanceCase:
    """One executed cell of the matrix."""

    engine: str
    solver: str
    octant_parallel: bool
    num_threads: int
    backend: str
    mean_flux: float
    flux_digest: str

    @property
    def label(self) -> str:
        return case_label(
            self.engine, self.solver, self.octant_parallel, self.num_threads, self.backend
        )

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "solver": self.solver,
            "octant_parallel": self.octant_parallel,
            "num_threads": self.num_threads,
            "backend": self.backend,
            "mean_flux": self.mean_flux,
            "flux_digest": self.flux_digest,
        }


@dataclass(frozen=True)
class BitwiseCheck:
    """An exact-equality assertion over a group of cases."""

    kind: str
    group: str
    members: tuple[str, ...]
    passed: bool

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "group": self.group,
            "members": list(self.members),
            "passed": self.passed,
        }


@dataclass(frozen=True)
class ConformanceReport:
    """Full outcome of one conformance-matrix run."""

    spec: ProblemSpec
    engines: tuple[str, ...]
    solvers: tuple[str, ...]
    backends: tuple[str, ...]
    cases: tuple[ConformanceCase, ...]
    max_pairwise_deviation: float
    tolerance: float
    checks: tuple[BitwiseCheck, ...]

    @property
    def passed(self) -> bool:
        return self.max_pairwise_deviation <= self.tolerance and all(
            check.passed for check in self.checks
        )

    @property
    def failed_checks(self) -> list[BitwiseCheck]:
        return [check for check in self.checks if not check.passed]

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "engines": list(self.engines),
            "solvers": list(self.solvers),
            "backends": list(self.backends),
            "num_cases": len(self.cases),
            "max_pairwise_deviation": self.max_pairwise_deviation,
            "tolerance": self.tolerance,
            "bitwise_checks": [check.to_dict() for check in self.checks],
            "cases": [case.to_dict() for case in self.cases],
            "passed": self.passed,
        }


def _digest(flux: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(flux).tobytes()).hexdigest()


def conformance_matrix(
    spec: ProblemSpec | None = None,
    *,
    engines=None,
    solvers=None,
    backends=None,
    octant_modes=(False, True),
    thread_counts=(1, 2),
    tolerance: float = CONFORMANCE_TOLERANCE,
    jobs: int | None = None,
) -> ConformanceReport:
    """Run the canonical spec across every registered combination.

    ``engines``/``solvers``/``backends`` default to everything currently
    registered; pass subsets to shrink the matrix (e.g. the fast test tier
    runs the serial backend only).
    """
    base = canonical_spec() if spec is None else spec
    engines = tuple(engines) if engines is not None else tuple(available_engines())
    solvers = tuple(solvers) if solvers is not None else tuple(available_solvers())
    if backends is None:
        from ..campaign.backends import available_backends

        backends = tuple(available_backends())
    else:
        backends = tuple(backends)

    study = Study.grid(
        base,
        engine=list(engines),
        solver=list(solvers),
        octant_parallel=list(octant_modes),
        num_threads=list(thread_counts),
        name="conformance",
    )

    fluxes: dict[tuple, np.ndarray] = {}
    cases: list[ConformanceCase] = []
    for backend in backends:
        result = run_study(study, backend=backend, jobs=jobs)
        for study_run in result:
            key = (
                study_run.spec.engine,
                study_run.spec.solver,
                bool(study_run.spec.octant_parallel),
                int(study_run.run_options.get("num_threads", 1)),
                backend,
            )
            flux = study_run.result.scalar_flux
            fluxes[key] = flux
            cases.append(
                ConformanceCase(
                    *key[:4],
                    backend=backend,
                    mean_flux=float(flux.mean()),
                    flux_digest=_digest(flux),
                )
            )

    keys = list(fluxes)
    max_dev = 0.0
    for i, a in enumerate(keys):
        for b in keys[i + 1:]:
            max_dev = max(max_dev, float(np.max(np.abs(fluxes[a] - fluxes[b]))))

    digests = {key: case.flux_digest for key, case in zip(keys, cases)}

    checks: list[BitwiseCheck] = []

    def add_check(kind: str, group: str, members: list[tuple]) -> None:
        if len(members) < 2:
            return
        first = digests[members[0]]
        checks.append(
            BitwiseCheck(
                kind=kind,
                group=group,
                members=tuple(case_label(*m) for m in members),
                passed=all(digests[m] == first for m in members),
            )
        )

    # Backend invariance: same run, every backend, identical bytes.
    for engine in engines:
        for solver in solvers:
            for octant in octant_modes:
                for threads in thread_counts:
                    add_check(
                        "backend-invariance",
                        f"{engine}/{solver}/{'octant' if octant else 'sweep'}/t{threads}",
                        [(engine, solver, octant, threads, b) for b in backends],
                    )

    # Thread determinism: identical bytes for any worker count.
    for engine in engines:
        for solver in solvers:
            for octant in octant_modes:
                for backend in backends:
                    add_check(
                        "thread-determinism",
                        f"{engine}/{solver}/{'octant' if octant else 'sweep'}/{backend}",
                        [(engine, solver, octant, t, backend) for t in thread_counts],
                    )

    # Engine families: engines advertising the same bitwise_family must agree
    # exactly under solvers whose factored path is exact.
    families: dict[str, list[str]] = {}
    for engine in engines:
        family = getattr(get_engine(engine), "bitwise_family", None)
        if family is not None:
            families.setdefault(family, []).append(engine)
    for family, members in sorted(families.items()):
        if len(members) < 2:
            continue
        for solver in solvers:
            if not getattr(get_solver(solver), "prefactorisation_exact", False):
                continue
            for octant in octant_modes:
                for threads in thread_counts:
                    for backend in backends:
                        add_check(
                            "engine-family",
                            f"{family}/{solver}/{'octant' if octant else 'sweep'}"
                            f"/t{threads}/{backend}",
                            [(e, solver, octant, threads, backend) for e in members],
                        )

    return ConformanceReport(
        spec=base,
        engines=engines,
        solvers=solvers,
        backends=backends,
        cases=tuple(cases),
        max_pairwise_deviation=max_dev,
        tolerance=float(tolerance),
        checks=tuple(checks),
    )
