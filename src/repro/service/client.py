"""A small stdlib client for the service gateway.

:class:`ServiceClient` wraps the JSON-over-HTTP surface of
:mod:`repro.service.http` with one method per endpoint -- the tests, the CI
service-smoke job and ``examples/serve_client.py`` all drive the daemon
through it, so the wire format is exercised end to end rather than through
in-process shortcuts.  Errors come back as :class:`ServiceError` carrying the
HTTP status and the decoded JSON body (including the structured deck-error
fields on a 400).
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Iterator

from ..obs.trace import TRACE_HEADER, TraceContext

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx gateway response, with its status and JSON payload."""

    def __init__(self, status: int, payload: dict):
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")


class ServiceClient:
    """One gateway endpoint, addressed by host and port.

    Every call opens a fresh connection (the gateway is HTTP/1.0,
    close-delimited), so a client instance is safe to share across threads.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing
    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ) -> dict:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload)
            headers = dict(headers or {})
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read() or b"{}")
            if not 200 <= response.status < 300:
                raise ServiceError(response.status, data)
            return data
        finally:
            conn.close()

    # ------------------------------------------------------------- surface
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def submit(
        self,
        *,
        deck: str | None = None,
        spec: dict | None = None,
        run_options: dict | None = None,
        keep_flux: bool = True,
        trace: TraceContext | str | bool | None = None,
    ) -> dict:
        """``POST /jobs``: submit a deck string or a ``ProblemSpec`` dict.

        ``trace`` joins the submission to a trace via the
        ``X-Unsnap-Trace`` header: pass a :class:`TraceContext`, a
        ready-made header string, or ``True`` to start a fresh trace (the
        generated context comes back in the job body's ``trace`` field).
        """
        payload: dict = {"keep_flux": keep_flux}
        if deck is not None:
            payload["deck"] = deck
        if spec is not None:
            payload["spec"] = spec
        if run_options:
            payload["run_options"] = run_options
        headers = {}
        if trace is True:
            trace = TraceContext.new()
        if isinstance(trace, TraceContext):
            headers[TRACE_HEADER] = trace.to_header()
        elif isinstance(trace, str):
            headers[TRACE_HEADER] = trace
        return self._request("POST", "/jobs", payload, headers=headers)

    def job(self, job_id: int) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: int) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: int, timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Poll ``GET /jobs/{id}`` until the job is terminal."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['state']!r} after {timeout}s")
            time.sleep(poll)

    def progress(
        self, job_id: int, interval: float = 0.1, timeout: float = 60.0
    ) -> Iterator[dict]:
        """Yield the ndjson snapshots of ``GET /jobs/{id}/progress``."""
        conn = HTTPConnection(self.host, self.port, timeout=max(self.timeout, timeout + 5.0))
        try:
            conn.request(
                "GET", f"/jobs/{job_id}/progress?interval={interval}&timeout={timeout}"
            )
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(response.status, json.loads(response.read() or b"{}"))
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()
