"""The job-queue daemon: a bounded queue draining onto a worker pool.

:class:`ServiceDaemon` is the process-lifetime core of the service layer
(the HTTP gateway in :mod:`repro.service.http` is a thin shell over it):

* **Bounded intake** -- :meth:`submit` refuses work beyond
  ``max_queue_depth`` with :class:`QueueFullError` (the gateway's 429), so a
  traffic spike degrades into back-pressure instead of unbounded memory.
* **Store-backed dedup** -- before executing, a worker probes the attached
  :class:`~repro.campaign.store.ResultStore`; a hit short-circuits to the
  stored result (zero new solves).  The store key is the content hash of the
  canonical ``(spec, run_options)`` payload, so a million identical
  submissions cost one solve.
* **Single-flight coalescing** -- an identical job that arrives while its
  twin is *still running* does not execute either: it parks behind the
  in-flight leader and is served the leader's result on completion (if the
  leader fails or is cancelled, parked followers are re-queued and retry
  individually).
* **Cooperative cancellation** -- cancelling a queued job always works; a
  running job gets :attr:`~repro.service.job.Job.cancel_requested` set,
  which execution hooks may observe and honour by raising
  :class:`JobCancelled` (best-effort: the run may finish first and the job
  ends ``done``).
* **Backend-registry execution** -- each job executes through the campaign
  backend registry (``serial``/``thread``/``process`` or any
  :func:`repro.campaign.register_backend`-ed name) as a one-point payload,
  so the execution contract (pickle out, ``RunResult`` back) is exactly the
  study one.  In-process backends additionally get the job's live
  :class:`~repro.telemetry.Telemetry` threaded through for the progress
  stream; the process backend runs uninstrumented (the instrument's lock
  cannot cross a pickle boundary).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Callable

from ..campaign.backends import get_backend, iter_backend_results
from ..campaign.store import ResultStore
from ..campaign.study import RUN_OPTION_KEYS
from ..campaign.workitem import WorkItem, run_key
from ..engines import get_engine
from ..obs.trace import SpanExporter, TraceContext, use_trace
from ..runner import RunResult
from ..solvers import get_solver
from ..telemetry import Telemetry
from .job import CANCELLED, DONE, FAILED, QUEUED, RUNNING, Job

__all__ = ["ServiceDaemon", "JobCancelled", "QueueFullError"]

#: Backends whose workers share this process: the job's telemetry instrument
#: can be threaded straight through ``repro.run`` for live progress.
_IN_PROCESS_BACKENDS = frozenset({"serial", "thread"})


class JobCancelled(Exception):
    """Raised by an execution hook that observed ``cancel_requested``."""


class QueueFullError(RuntimeError):
    """The daemon's bounded queue is at capacity (the gateway's 429)."""

    def __init__(self, depth: int, limit: int):
        self.depth = depth
        self.limit = limit
        super().__init__(
            f"job queue is full ({depth}/{limit} queued); retry after a job drains"
        )


class ServiceDaemon:
    """Bounded in-process job queue over the campaign backend registry.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore` (or directory path): the dedup cache.
        Hits are served without executing; fresh results are persisted (so
        the cache also survives daemon restarts, and a campaign store warms
        the service).
    backend:
        Campaign execution backend name, alias or instance; every job
        executes through it as a single ``(spec, run_options)`` payload.
    workers:
        Worker threads draining the queue (the service's concurrency).
    max_queue_depth:
        Maximum number of *waiting* jobs; :meth:`submit` beyond it raises
        :class:`QueueFullError`.
    max_retained:
        Optionally prune the oldest *terminal* jobs beyond this count so a
        long-lived daemon's job table stays bounded (``None``: keep all).
    executor:
        Override of the per-job execution callable ``f(job) -> RunResult``
        (tests use this to fake slow or cancellable runs); default executes
        through ``backend``.
    trace_exporter:
        Optional :class:`~repro.obs.trace.SpanExporter`: when attached
        (``unsnap serve --trace PATH``), every job's queue wait and
        execution become spans of its trace, and in-process telemetry
        phases ride along as child spans.  ``None`` -- the default --
        keeps every execution on the exact pre-tracing path.
    """

    def __init__(
        self,
        *,
        store: ResultStore | str | None = None,
        backend: str = "serial",
        workers: int = 2,
        max_queue_depth: int = 64,
        max_retained: int | None = None,
        executor: Callable[[Job], RunResult] | None = None,
        trace_exporter: SpanExporter | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if max_retained is not None and max_retained < 1:
            raise ValueError("max_retained must be >= 1 (or None)")
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.backend = get_backend(backend)
        self.backend_name = getattr(self.backend, "name", type(self.backend).__name__.lower())
        self.workers = workers
        self.max_queue_depth = max_queue_depth
        self.max_retained = max_retained
        self._execute = executor if executor is not None else self._execute_via_backend
        self.trace_exporter = trace_exporter
        #: Aggregate of every executed job's instrument (the ``/metrics``
        #: ``unsnap_run_*`` series); merged under the daemon lock.
        self.telemetry = Telemetry()

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[int, Job] = {}
        self._order: deque[int] = deque()  # submission order, for pruning
        self._queue: deque[int] = deque()
        self._pending = 0  # queued jobs occupying a queue slot
        self._inflight: dict[str, int] = {}  # content key -> leader job id
        self._followers: dict[str, list[Job]] = {}
        self._next_id = 1
        self._stop = False
        self._threads: list[threading.Thread] = []

        # Service counters (the /stats payload).
        self.submitted = 0
        self.executed = 0
        self.store_hits = 0
        self.coalesced_hits = 0

    # ---------------------------------------------------------- lifecycle
    def start(self) -> "ServiceDaemon":
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return self
            self._stop = False
            self._threads = [
                threading.Thread(
                    target=self._worker, name=f"unsnap-service-{i}", daemon=True
                )
                for i in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()
        return self

    def shutdown(self, *, cancel_pending: bool = True, timeout: float | None = None) -> None:
        """Stop the workers and join them.

        ``cancel_pending=True`` (the default) marks every still-queued job
        cancelled so the daemon stops after the in-flight jobs; ``False``
        drains the whole queue first.  Joining is bounded by ``timeout``
        per worker when given.
        """
        with self._cond:
            self._stop = True
            if cancel_pending:
                for job in self._jobs.values():
                    if job.state == QUEUED:
                        self._finish_locked(job, CANCELLED)
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def __enter__(self) -> "ServiceDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------- intake
    def submit(
        self,
        spec,
        run_options: dict | None = None,
        *,
        keep_flux: bool = True,
        trace: TraceContext | dict | None = None,
    ) -> Job:
        """Queue one run and return its :class:`Job` (state ``queued``).

        ``trace`` carries the submitter's trace identity (the parsed
        ``X-Unsnap-Trace`` header); when the daemon has a trace exporter
        and none is given, the job starts a fresh trace of its own.  The
        trace never enters ``run_options`` -- the content key of a traced
        and an untraced submission is identical by construction.

        Raises
        ------
        KeyError
            Unknown engine or solver name on the spec, or an unknown run
            option -- validated *before* queueing so a bad request never
            occupies a queue slot (the gateway's 400).
        QueueFullError
            The bounded queue is at ``max_queue_depth`` (the gateway's 429).
        RuntimeError
            The daemon was shut down.
        """
        run_options = dict(run_options or {})
        unknown = sorted(set(run_options) - set(RUN_OPTION_KEYS))
        if unknown:
            raise KeyError(
                f"unknown run option(s) {unknown}; valid run options: "
                f"{sorted(RUN_OPTION_KEYS)}"
            )
        # Resolve the registry names up front: a typo'd engine must be a
        # clean submission error, not a failed job.
        get_engine(spec.engine)
        get_solver(spec.solver)
        # The canonical WorkItem content key: the same key the result store
        # files under and the distributed spool names job files with.
        key = run_key(spec, run_options)
        if trace is None and self.trace_exporter is not None:
            trace = TraceContext.new()
        if isinstance(trace, TraceContext):
            trace = trace.to_dict()
        elif trace is not None:
            trace = dict(trace)
        with self._cond:
            if self._stop:
                raise RuntimeError("service daemon is shut down")
            if self._pending >= self.max_queue_depth:
                raise QueueFullError(self._pending, self.max_queue_depth)
            job = Job(
                id=self._next_id,
                key=key,
                spec=spec,
                run_options=run_options,
                keep_flux=keep_flux,
                trace=trace,
                telemetry=Telemetry(),
            )
            self._next_id += 1
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._queue.append(job.id)
            self._pending += 1
            self.submitted += 1
            self._prune_locked()
            self._cond.notify()
        return job

    def _prune_locked(self) -> None:
        """Drop the oldest terminal jobs beyond ``max_retained``."""
        if self.max_retained is None:
            return
        while len(self._jobs) > self.max_retained and self._order:
            for victim_id in list(self._order):
                job = self._jobs.get(victim_id)
                if job is None or job.terminal:
                    self._order.remove(victim_id)
                    self._jobs.pop(victim_id, None)
                    break
            else:
                return  # nothing terminal left to prune

    # ------------------------------------------------------------- access
    def get(self, job_id: int) -> Job:
        """Look up a job by id (``KeyError`` -- the gateway's 404)."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"no such job {job_id}") from None

    def jobs(self) -> list[Job]:
        """Every retained job, in submission order."""
        with self._lock:
            return [self._jobs[i] for i in self._order if i in self._jobs]

    def wait(self, job_id: int, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state and return it."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no such job {job_id}")
            while not job.terminal:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {job.state!r} after {timeout}s"
                    )
                self._cond.wait(timeout=remaining)
            return job

    def cancel(self, job_id: int) -> Job:
        """Cancel a job: queued jobs immediately, running jobs best-effort.

        A queued (or parked) job transitions straight to ``cancelled`` and
        never runs.  A running job has :attr:`~repro.service.job.Job.
        cancel_requested` set for the execution hook to observe; whether it
        aborts is a race the run may win.  Cancelling a terminal job is a
        no-op.  Returns the job either way.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no such job {job_id}")
            job.cancel_requested = True
            if job.state == QUEUED:
                self._finish_locked(job, CANCELLED)
                self._cond.notify_all()
            return job

    def stats(self) -> dict:
        """The ``/stats`` payload: queue occupancy, state counts, dedup."""
        with self._lock:
            states = {state: 0 for state in (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
            for job in self._jobs.values():
                states[job.state] += 1
            cache_hits = self.store_hits + self.coalesced_hits
            served = cache_hits + self.executed
            stats = {
                "backend": self.backend_name,
                "workers": self.workers,
                "max_queue_depth": self.max_queue_depth,
                "queue_depth": self._pending,
                "jobs": states,
                "submitted": self.submitted,
                "executed": self.executed,
                "cache_hits": cache_hits,
                "store_hits": self.store_hits,
                "coalesced_hits": self.coalesced_hits,
                "cache_hit_ratio": cache_hits / served if served else 0.0,
            }
            if self.store is not None:
                stats["store"] = {
                    "root": str(self.store.root),
                    "records": len(self.store),
                    "hits": self.store.hits,
                    "misses": self.store.misses,
                }
            return stats

    def metrics(self) -> str:
        """The ``GET /metrics`` body: a Prometheus text-format snapshot.

        Sources: the :meth:`stats` payload, the aggregate run telemetry of
        executed jobs, and -- when the backend is spool-backed (or
        ``UNSNAP_SPOOL_DIR`` is set) -- the live spool status.  A failing
        source degrades to ``unsnap_metrics_source_errors_total`` instead
        of failing the scrape.
        """
        from ..obs.metrics import (
            MetricsRegistry,
            service_metrics,
            spool_metrics,
            telemetry_metrics,
        )

        registry = MetricsRegistry()
        registry.add_source(lambda: service_metrics(self.stats()))
        registry.add_source(lambda: telemetry_metrics(self.telemetry))
        spool_root = (
            getattr(self.backend, "spool_dir", None)
            or os.environ.get("UNSNAP_SPOOL_DIR", "").strip()
            or None
        )
        if spool_root:

            def spool_source():
                from ..campaign.distributed.spool import SpoolDir

                return spool_metrics(SpoolDir(spool_root).status())

            registry.add_source(spool_source)
        return registry.render()

    # ---------------------------------------------------------- execution
    def _execute_via_backend(self, job: Job) -> RunResult:
        """Default execution: one :class:`WorkItem` through the backend registry."""
        run_options = dict(job.run_options)
        if self.backend_name in _IN_PROCESS_BACKENDS:
            # Same-process execution: thread the live instrument through so
            # the progress stream has phases to show.  (A process backend's
            # instrument could not pickle back -- its jobs run bare.)
            run_options["telemetry"] = job.telemetry
        item = WorkItem(spec=job.spec, run_options=run_options, index=0)
        results = [
            result for _index, result, _meta in iter_backend_results(
                self.backend, [item], jobs=1
            )
        ]
        if len(results) != 1:
            raise RuntimeError(
                f"backend {self.backend_name!r} returned {len(results)} results "
                f"for 1 job"
            )
        return results[0]

    def _traced_execute(self, job: Job) -> RunResult:
        """Run the job, wrapped in its trace when it carries one.

        The ambient trace context is set for the duration so backends the
        execution contract cannot pass arguments through (the distributed
        coordinator) can stamp their spool payloads; with an exporter
        attached the execution itself becomes a ``service.execute`` span
        and the job's live telemetry phases become its children.
        """
        context = TraceContext.from_dict(job.trace) if job.trace else None
        if context is None:
            return self._execute(job)
        if self.trace_exporter is None:
            # No local span file, but the identity still propagates: spool
            # workers downstream trace into the spool's trace/ directory.
            with use_trace(context):
                return self._execute(job)
        with self.trace_exporter.span(
            "service.execute",
            context=context,
            attrs={"job_id": job.id, "backend": self.backend_name},
        ) as span:
            if job.telemetry is not None:
                job.telemetry.attach_exporter(self.trace_exporter, span.context())
            with use_trace(span.context()):
                return self._execute(job)

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._stop and not self._queue:
                    self._cond.wait()
                if not self._queue:
                    return  # stopping and drained
                job = self._jobs.get(self._queue.popleft())
                self._pending -= 1
                if job is None or job.terminal:
                    continue  # cancelled while queued (or pruned)
                if job.cancel_requested:
                    self._finish_locked(job, CANCELLED)
                    self._cond.notify_all()
                    continue
                if job.key in self._inflight:
                    # Single-flight: park behind the identical running job.
                    self._followers.setdefault(job.key, []).append(job)
                    continue
                self._inflight[job.key] = job.id
                job.transition(RUNNING)
                job.started_at = time.time()

            # Out of the lock: the dedup probe and the solve itself.
            if job.trace and self.trace_exporter is not None:
                self.trace_exporter.emit(
                    "service.queue",
                    start=job.submitted_at,
                    end=time.time(),
                    context=TraceContext.from_dict(job.trace),
                    attrs={"job_id": job.id},
                )
            cached = None
            if self.store is not None:
                cached = self.store.get(job.spec, job.run_options)
            if cached is not None:
                self._complete(job, DONE, summary=cached.summary(), from_store=True)
                continue
            if job.cancel_requested:
                # Cancel landed between dequeue and execution start: still a
                # guaranteed cancel -- no solve has begun.
                self._complete(job, CANCELLED)
                continue
            try:
                result = self._traced_execute(job)
            except JobCancelled:
                self._complete(job, CANCELLED)
            except Exception as exc:  # job isolation boundary: a failed run
                # must fail its job, never the worker thread
                self._complete(job, FAILED, error=f"{type(exc).__name__}: {exc}")
            else:
                if self.store is not None:
                    self.store.put(
                        job.spec, result, job.run_options, include_flux=job.keep_flux
                    )
                self._complete(job, DONE, summary=result.summary(), executed=True)

    # ------------------------------------------------------------ internal
    def _finish_locked(self, job: Job, state: str, *, error: str | None = None) -> None:
        """Terminal transition + timestamp (caller holds the lock)."""
        job.transition(state)
        job.error = error
        job.finished_at = time.time()

    def _complete(
        self,
        job: Job,
        state: str,
        *,
        summary: dict | None = None,
        error: str | None = None,
        from_store: bool = False,
        executed: bool = False,
    ) -> None:
        """Publish a leader's outcome and settle its parked followers."""
        with self._cond:
            if state == DONE:
                job.result_summary = summary
                job.cache_hit = from_store
                if from_store:
                    self.store_hits += 1
                if executed:
                    self.executed += 1
                    if job.telemetry is not None:
                        # Fold the finished run's instrument into the
                        # daemon-lifetime aggregate behind /metrics.
                        self.telemetry.merge(job.telemetry)
            self._finish_locked(job, state, error=error)
            self._inflight.pop(job.key, None)
            followers = self._followers.pop(job.key, [])
            for follower in followers:
                if follower.terminal:
                    continue  # cancelled while parked
                if state == DONE:
                    if follower.cancel_requested:
                        self._finish_locked(follower, CANCELLED)
                        continue
                    # Served the leader's bits: a dict copy of the same
                    # summary, so the payloads are identical by construction.
                    follower.result_summary = dict(summary)
                    follower.cache_hit = True
                    self.coalesced_hits += 1
                    self._finish_locked(follower, DONE)
                elif self._stop:
                    self._finish_locked(follower, CANCELLED)
                else:
                    # The leader failed or aborted: followers retry
                    # individually (each becomes its own leader).
                    self._queue.append(follower.id)
                    self._pending += 1
            self._cond.notify_all()
