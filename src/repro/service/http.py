"""The HTTP gateway: a stdlib shell over :class:`~repro.service.daemon.
ServiceDaemon`.

Built on :class:`http.server.ThreadingHTTPServer` -- no new hard
dependencies -- with a small JSON-over-HTTP surface:

====== ============================ ===========================================
Method Path                         Meaning
====== ============================ ===========================================
POST   ``/jobs``                    Submit a run: ``{"deck": "..."}`` or
                                    ``{"spec": {...}}``, optional
                                    ``run_options`` and ``keep_flux``.
                                    201 + job body; structured 400 on a bad
                                    deck/spec; 429 queue full; 413 body too
                                    large.
GET    ``/jobs``                    List the retained jobs (id, state, key).
GET    ``/jobs/{id}``               Job status + result summary (404 unknown).
GET    ``/jobs/{id}/progress``      Stream ``application/x-ndjson`` snapshots
                                    (state + telemetry phases/counters) until
                                    the job is terminal.
DELETE ``/jobs/{id}``               Cancel (queued: always; running: best
                                    effort).  Returns the job body.
GET    ``/healthz``                 Liveness probe.
GET    ``/stats``                   Queue depth, worker count, per-state job
                                    counts, cache-hit ratio, store statistics.
GET    ``/metrics``                 Prometheus text-format snapshot of the
                                    daemon/telemetry/spool counters.
GET    ``/dashboard``               Self-contained live HTML dashboard
                                    (polls ``/stats``, streams progress).
====== ============================ ===========================================

Submissions may carry an ``X-Unsnap-Trace: {trace_id}[-{span_id}]``
header; the gateway parses it (400 on malformed values), records a
``gateway.submit`` span when the daemon has a trace exporter, and hands
the context to :meth:`~repro.service.daemon.ServiceDaemon.submit` so the
whole execution joins the caller's trace.

Deck validation failures reuse the named-key machinery of
:mod:`repro.input_deck`: an :class:`~repro.input_deck.UnknownDeckKeyError`
maps to a 400 whose body carries the stable ``key``/``section``/
``valid_keys`` fields -- structured JSON, not a parsed message string.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..config import ProblemSpec
from ..input_deck import UnknownDeckKeyError, loads as load_deck
from ..obs.dashboard import DASHBOARD_HTML
from ..obs.trace import TRACE_HEADER, TraceContext
from .daemon import QueueFullError, ServiceDaemon
from .job import Job

__all__ = ["ServiceHTTPServer", "make_server", "DEFAULT_MAX_BODY_BYTES"]

#: Default request-body ceiling (a deck or spec payload is tiny; anything
#: bigger is a mistake or an attack on the gateway's memory).
DEFAULT_MAX_BODY_BYTES = 1_048_576

_JOB_PATH = re.compile(r"^/jobs/(\d+)$")
_PROGRESS_PATH = re.compile(r"^/jobs/(\d+)/progress$")

#: Progress-stream poll interval bounds (seconds).
_MIN_INTERVAL, _MAX_INTERVAL, _DEFAULT_INTERVAL = 0.02, 5.0, 0.25
#: Progress-stream duration ceiling: the stream ends with a ``"timeout"``
#: marker line if the job is still not terminal (clients re-attach).
_DEFAULT_STREAM_TIMEOUT = 300.0


class ServiceHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying the daemon and the guards."""

    daemon_threads = True  # handler threads must not outlive a shutdown

    def __init__(
        self,
        address: tuple[str, int],
        daemon: ServiceDaemon,
        *,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        quiet: bool = True,
    ):
        self.service = daemon
        self.max_body_bytes = max_body_bytes
        self.quiet = quiet
        super().__init__(address, _ServiceHandler)

    @property
    def port(self) -> int:
        """The bound port (useful with the ``port=0`` pick-a-port idiom)."""
        return self.server_address[1]


def make_server(
    daemon: ServiceDaemon,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind a gateway over ``daemon`` (``port=0`` picks a free port)."""
    return ServiceHTTPServer(
        (host, port), daemon, max_body_bytes=max_body_bytes, quiet=quiet
    )


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes one request onto the daemon; every body is JSON."""

    server: ServiceHTTPServer  # narrowed for readability

    # Close-delimited bodies keep the progress stream trivial: HTTP/1.0 with
    # Connection: close per response, one TCP connection per request.
    protocol_version = "HTTP/1.0"

    # ------------------------------------------------------------ plumbing
    def log_message(self, format: str, *args) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **fields) -> None:
        self._send_json(status, {"error": message, **fields})

    # -------------------------------------------------------------- routes
    def do_GET(self) -> None:  # http.server API name
        try:
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif path == "/stats":
                self._send_json(200, self.server.service.stats())
            elif path == "/metrics":
                body = self.server.service.metrics().encode()
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif path == "/dashboard":
                body = DASHBOARD_HTML.encode()
                self.send_response(200)
                self.send_header("Content-Type", "text/html; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif path == "/jobs":
                jobs = self.server.service.jobs()
                self._send_json(
                    200,
                    {
                        "jobs": [
                            {"id": j.id, "state": j.state, "key": j.key} for j in jobs
                        ]
                    },
                )
            elif match := _PROGRESS_PATH.match(path):
                self._stream_progress(int(match.group(1)))
            elif match := _JOB_PATH.match(path):
                self._with_job(int(match.group(1)), lambda job: job.to_dict())
            else:
                self._error(404, f"no such resource {path!r}")
        except ConnectionError:
            pass  # client went away mid-response (reset or broken pipe)
        except Exception as exc:
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_DELETE(self) -> None:
        match = _JOB_PATH.match(self.path.split("?", 1)[0])
        if not match:
            self._error(404, f"no such resource {self.path!r}")
            return
        self._with_job(
            int(match.group(1)),
            lambda job: self.server.service.cancel(job.id).to_dict(),
        )

    def do_POST(self) -> None:
        if self.path.split("?", 1)[0] != "/jobs":
            self._error(404, f"no such resource {self.path!r}")
            return
        started = time.time()
        try:
            trace = self._trace_context()
            payload = self._read_json_body()
        except _RequestError as exc:
            self._error(exc.status, exc.message, **exc.fields)
            return
        try:
            job = self._submit(payload, trace)
        except _RequestError as exc:
            self._error(exc.status, exc.message, **exc.fields)
            return
        except QueueFullError as exc:
            self._error(
                429,
                str(exc),
                depth=exc.depth,
                limit=exc.limit,
            )
            return
        exporter = self.server.service.trace_exporter
        if exporter is not None and job.trace is not None:
            exporter.emit(
                "gateway.submit",
                start=started,
                end=time.time(),
                context=TraceContext.from_dict(job.trace),
                attrs={"job_id": job.id},
            )
        self._send_json(201, job.to_dict(), headers={"Location": f"/jobs/{job.id}"})

    # ------------------------------------------------------------- helpers
    def _trace_context(self) -> TraceContext | None:
        """The parsed ``X-Unsnap-Trace`` header, if the request carries one."""
        header = self.headers.get(TRACE_HEADER)
        if header is None:
            return None
        try:
            return TraceContext.parse(header)
        except ValueError as exc:
            raise _RequestError(400, str(exc)) from None

    def _with_job(self, job_id: int, view) -> None:
        try:
            job = self.server.service.get(job_id)
        except KeyError:
            self._error(404, f"no such job {job_id}")
            return
        self._send_json(200, view(job))

    def _read_json_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise _RequestError(411, "Content-Length required")
        length = int(length)
        if length > self.server.max_body_bytes:
            # Guard: refuse before reading, so an oversized body never
            # occupies gateway memory.
            raise _RequestError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit",
                limit=self.server.max_body_bytes,
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _RequestError(400, f"request body is not valid JSON ({exc})") from None
        if not isinstance(payload, dict):
            raise _RequestError(400, "request body must be a JSON object")
        return payload

    def _submit(self, payload: dict, trace: TraceContext | None = None) -> Job:
        """Turn a ``POST /jobs`` payload into a queued job."""
        deck = payload.get("deck")
        spec_dict = payload.get("spec")
        if (deck is None) == (spec_dict is None):
            raise _RequestError(
                400, "provide exactly one of 'deck' (input deck text) or 'spec' "
                "(ProblemSpec JSON)"
            )
        if deck is not None:
            try:
                spec = load_deck(str(deck))
            except UnknownDeckKeyError as exc:
                # The named-key machinery of the deck parser, as data.
                raise _RequestError(
                    400,
                    exc.args[0],
                    key=exc.key,
                    section=exc.section,
                    valid_keys=list(exc.valid_keys),
                ) from None
            except (KeyError, ValueError) as exc:
                raise _RequestError(400, str(exc.args[0] if exc.args else exc)) from None
        else:
            try:
                spec = ProblemSpec.from_dict(dict(spec_dict))
            except (KeyError, TypeError, ValueError) as exc:
                raise _RequestError(
                    400, f"invalid problem spec: {exc.args[0] if exc.args else exc}"
                ) from None
        run_options = payload.get("run_options") or {}
        if not isinstance(run_options, dict):
            raise _RequestError(400, "'run_options' must be a JSON object")
        try:
            return self.server.service.submit(
                spec,
                run_options,
                keep_flux=bool(payload.get("keep_flux", True)),
                trace=trace,
            )
        except (KeyError, ValueError) as exc:
            raise _RequestError(400, str(exc.args[0] if exc.args else exc)) from None
        except RuntimeError as exc:
            if isinstance(exc, QueueFullError):
                raise
            raise _RequestError(503, str(exc)) from None

    def _stream_progress(self, job_id: int) -> None:
        """Stream ndjson progress snapshots until the job is terminal."""
        try:
            job = self.server.service.get(job_id)
        except KeyError:
            self._error(404, f"no such job {job_id}")
            return
        interval, timeout = self._progress_params()
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        deadline = time.monotonic() + timeout
        while True:
            snapshot = {
                "id": job.id,
                "state": job.state,
                "cache_hit": job.cache_hit,
                "telemetry": (
                    job.telemetry.snapshot() if job.telemetry is not None else None
                ),
            }
            terminal = job.terminal
            if terminal:
                snapshot["result_summary"] = job.result_summary
                snapshot["error"] = job.error
            self.wfile.write((json.dumps(snapshot) + "\n").encode())
            self.wfile.flush()
            if terminal:
                return
            if time.monotonic() >= deadline:
                self.wfile.write((json.dumps({"id": job.id, "timeout": True}) + "\n").encode())
                return
            try:
                self.server.service.wait(job_id, timeout=interval)
            except TimeoutError:
                pass  # not terminal yet: emit the next snapshot

    def _progress_params(self) -> tuple[float, float]:
        query = self.path.split("?", 1)[1] if "?" in self.path else ""
        params = dict(
            part.split("=", 1) for part in query.split("&") if "=" in part
        )
        try:
            interval = float(params.get("interval", _DEFAULT_INTERVAL))
        except ValueError:
            interval = _DEFAULT_INTERVAL
        try:
            timeout = float(params.get("timeout", _DEFAULT_STREAM_TIMEOUT))
        except ValueError:
            timeout = _DEFAULT_STREAM_TIMEOUT
        return (
            min(max(interval, _MIN_INTERVAL), _MAX_INTERVAL),
            min(max(timeout, 0.0), _DEFAULT_STREAM_TIMEOUT),
        )


class _RequestError(Exception):
    """Internal: a request failure with its HTTP status and JSON fields."""

    def __init__(self, status: int, message: str, **fields):
        self.status = status
        self.message = message
        self.fields = fields
        super().__init__(message)
