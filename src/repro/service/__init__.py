"""Transport-as-a-service: the job-queue daemon and its HTTP gateway.

The fifth registry-driven subsystem turns the campaign API into a *service*:
:class:`ServiceDaemon` (a bounded in-process job queue draining onto a
worker pool that executes through the campaign backend registry, with the
content-hashed :class:`~repro.campaign.store.ResultStore` as a request-dedup
cache and single-flight coalescing of identical in-flight submissions) plus
a stdlib HTTP gateway (:func:`make_server` / ``unsnap serve``) and a small
client (:class:`ServiceClient`).

Quick tour::

    from repro.service import ServiceDaemon, make_server, ServiceClient

    daemon = ServiceDaemon(store="runs/", backend="serial", workers=2).start()
    server = make_server(daemon, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()

    client = ServiceClient(port=server.port)
    job = client.submit(deck="nx=4 ny=4 nz=4 ng=2")
    print(client.wait(job["id"])["result_summary"]["mean_flux"])

Dedup semantics: a job is keyed by the SHA-256 of its canonical
``(spec, run_options)`` payload -- the same key the store files records
under -- so re-submitting identical work is served from the store (zero new
solves), and identical jobs submitted *while one is already running* park
behind it and share its result.
"""

from .client import ServiceClient, ServiceError
from .daemon import JobCancelled, QueueFullError, ServiceDaemon
from .http import DEFAULT_MAX_BODY_BYTES, ServiceHTTPServer, make_server
from .job import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
)

__all__ = [
    "ServiceDaemon",
    "ServiceHTTPServer",
    "make_server",
    "ServiceClient",
    "ServiceError",
    "Job",
    "JobCancelled",
    "QueueFullError",
    "JOB_STATES",
    "TERMINAL_STATES",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "DEFAULT_MAX_BODY_BYTES",
]
