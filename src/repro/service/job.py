"""The service job model: one submitted run and its lifecycle.

A :class:`Job` is what the daemon queues: a :class:`~repro.config.
ProblemSpec` plus run options, identified by a monotonically increasing id
*and* by the content hash of its canonical ``(spec, run_options)`` payload
(:func:`repro.campaign.store.run_key` -- the same key the
:class:`~repro.campaign.store.ResultStore` files records under, which is
exactly what makes store-backed request dedup work).

The state machine is deliberately small::

    queued --> running --> done
       |          |------> failed
       |          '------> cancelled   (in-flight, best-effort)
       '-----------------> cancelled   (pre-start, always honoured)

plus the coalesced shortcut ``queued -> done`` taken when an identical
in-flight job (same content key) finishes first and this one is served its
result without ever starting.  :meth:`Job.transition` enforces the edges, so
an illegal transition is a bug that fails loudly rather than a silently
inconsistent status endpoint.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from ..config import ProblemSpec
from ..telemetry import Telemetry

__all__ = [
    "Job",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "JOB_STATES",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every state a job can be in.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: The legal edges of the state machine (see the module docstring).
_TRANSITIONS = {
    QUEUED: frozenset({RUNNING, CANCELLED, DONE}),
    RUNNING: frozenset({DONE, FAILED, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


@dataclass
class Job:
    """One submitted run and its current state.

    Mutable on purpose -- the daemon advances :attr:`state` under its lock;
    everything else is written exactly once.  :meth:`to_dict` /
    :meth:`from_dict` round-trip through JSON (the gateway's wire format);
    the live :attr:`telemetry` instrument is process-local and never
    serialised -- the progress endpoint streams its snapshots instead.
    """

    id: int
    key: str
    spec: ProblemSpec
    run_options: dict = field(default_factory=dict)
    state: str = QUEUED
    #: Keep the flux arrays in the store record (``False`` bounds memory and
    #: disk for callers that only need the summary).
    keep_flux: bool = True
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: ``"ExceptionType: message"`` for failed jobs.
    error: str | None = None
    #: Set by ``cancel()`` on a running job; execution hooks may observe it
    #: and abort (best-effort -- the run may finish first and win the race).
    cancel_requested: bool = False
    #: The result was served from the store or an identical in-flight job
    #: rather than a fresh solve.
    cache_hit: bool = False
    #: ``RunResult.summary()`` of the finished run (terminal ``done`` only).
    result_summary: dict | None = None
    #: ``{"trace_id": ..., "parent_id": ...}`` when the submission carried a
    #: trace context (``X-Unsnap-Trace``); rides the wire so clients can
    #: correlate job ids with trace files.  ``None`` -- the default -- keeps
    #: the payload byte-identical to the untraced format.
    trace: dict | None = None
    #: Live instrument of the executing run (in-process backends only).
    telemetry: Telemetry | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------- state machine
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def work_item(self):
        """This job as the shared campaign :class:`~repro.campaign.workitem.
        WorkItem` (same spec, options and content key the store and the
        distributed spool use)."""
        from ..campaign.workitem import WorkItem

        return WorkItem(spec=self.spec, run_options=dict(self.run_options), index=self.id)

    def transition(self, new_state: str) -> None:
        """Advance the state machine, rejecting illegal edges.

        Raises ``ValueError`` naming both states when the edge does not
        exist (e.g. ``done -> running``) -- terminal states are final.
        """
        if new_state not in _TRANSITIONS:
            raise ValueError(f"unknown job state {new_state!r}; states: {JOB_STATES}")
        if new_state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"job {self.id}: illegal transition {self.state!r} -> {new_state!r}"
            )
        self.state = new_state

    # ------------------------------------------------------------- export
    def to_dict(self) -> dict:
        """JSON-safe view of the job (the ``GET /jobs/{id}`` body)."""
        data = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "run_options": dict(self.run_options),
            "keep_flux": self.keep_flux,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "cache_hit": self.cache_hit,
            "result_summary": (
                dict(self.result_summary) if self.result_summary is not None else None
            ),
        }
        # Only traced jobs carry the key at all: the untraced wire payload
        # stays byte-identical to the pre-tracing format.
        if self.trace is not None:
            data["trace"] = dict(self.trace)
        return data

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        """Rebuild a job from :meth:`to_dict` output (bit-exact round trip)."""
        state = str(data["state"])
        if state not in _TRANSITIONS:
            raise ValueError(f"unknown job state {state!r}; states: {JOB_STATES}")
        return cls(
            id=int(data["id"]),
            key=str(data["key"]),
            spec=ProblemSpec.from_dict(data["spec"]),
            run_options=dict(data.get("run_options", {})),
            state=state,
            keep_flux=bool(data.get("keep_flux", True)),
            submitted_at=float(data["submitted_at"]),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            error=data.get("error"),
            cancel_requested=bool(data.get("cancel_requested", False)),
            cache_hit=bool(data.get("cache_hit", False)),
            result_summary=data.get("result_summary"),
            trace=data.get("trace"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Job":
        return cls.from_dict(json.loads(text))
