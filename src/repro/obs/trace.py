"""Structured tracing: trace contexts, span export and propagation.

A *trace* is one unit of user-visible work (one submission, one campaign);
a *span* is one timed operation inside it (``gateway.submit``,
``service.queue``, ``spool.wait``, ``worker.execute``, every
:class:`~repro.telemetry.Telemetry` phase).  Spans are append-only JSONL
events in the ``unsnap-trace-v1`` schema::

    {"format": "unsnap-trace-v1", "trace_id": "<32 hex>",
     "span_id": "<16 hex>", "parent_id": "<16 hex>" | null,
     "name": "solve.sweep", "start": <epoch s>, "end": <epoch s>,
     "seconds": <duration>, "attrs": {"worker_id": ..., ...}}

Three design rules keep the tracer as boring as the spool protocol:

* **The file is the API.**  Every process writes its own JSONL file (the
  daemon to ``--trace PATH``, each spool worker to
  ``spool/trace/{worker_id}.jsonl``); nothing ever reads them on the hot
  path.  ``unsnap trace summary DIR`` joins them afterwards by
  ``trace_id`` -- no collector, no socket, no dependency.
* **Context is data.**  A :class:`TraceContext` is two ids.  It crosses
  the HTTP gateway as the ``X-Unsnap-Trace: {trace_id}[-{span_id}]``
  header and the file spool as the ``trace`` field of the job payload;
  both carriers are optional and absent by default, so untraced payloads
  are byte-identical to pre-tracing ones.
* **Parentage follows the thread.**  The exporter keeps a per-thread span
  stack; a span (or telemetry phase) opened while another is open on the
  same thread becomes its child.  Work on foreign threads (octant pools)
  falls back to the explicit context parent -- degraded nesting, never a
  lost or misfiled span.
"""

from __future__ import annotations

import json
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from time import time as _now
from typing import Iterable, Iterator

__all__ = [
    "TRACE_FORMAT",
    "TRACE_HEADER",
    "TraceContext",
    "SpanExporter",
    "current_trace",
    "use_trace",
    "new_trace_id",
    "new_span_id",
    "read_spans",
]

#: Format marker written into (and required of) every span event.
TRACE_FORMAT = "unsnap-trace-v1"

#: The propagation header of the HTTP gateway.
TRACE_HEADER = "X-Unsnap-Trace"


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-digit span id."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """A propagated trace identity: the trace and the parent span.

    ``span_id`` is the span that *caused* the receiving side's work (empty
    string: no parent -- the receiver's spans become roots of the trace).
    """

    trace_id: str
    span_id: str = ""

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(trace_id=new_trace_id())

    def child(self, span_id: str) -> "TraceContext":
        """The context a span hands to work it causes elsewhere."""
        return TraceContext(self.trace_id, span_id)

    # ------------------------------------------------------------ carriers
    def to_header(self) -> str:
        """The ``X-Unsnap-Trace`` header value: ``trace_id[-span_id]``."""
        return f"{self.trace_id}-{self.span_id}" if self.span_id else self.trace_id

    @classmethod
    def parse(cls, header: str) -> "TraceContext":
        """Parse a header value (``ValueError`` on malformed input)."""
        text = str(header).strip().lower()
        trace_id, _, span_id = text.partition("-")
        if not _is_hex(trace_id, 32) or (span_id and not _is_hex(span_id, 16)):
            raise ValueError(
                f"malformed trace header {header!r} "
                f"(want '{{32 hex}}' or '{{32 hex}}-{{16 hex}}')"
            )
        return cls(trace_id=trace_id, span_id=span_id)

    def to_dict(self) -> dict:
        """The spool-payload carrier (``trace`` field of the job file)."""
        return {"trace_id": self.trace_id, "parent_id": self.span_id or None}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext | None":
        """Rebuild from a payload ``trace`` field; ``None`` if unusable."""
        if not isinstance(data, dict) or not data.get("trace_id"):
            return None
        return cls(
            trace_id=str(data["trace_id"]), span_id=str(data.get("parent_id") or "")
        )


def _is_hex(text: str, length: int) -> bool:
    if len(text) != length:
        return False
    try:
        int(text, 16)
    except ValueError:
        return False
    return True


# --------------------------------------------------------------- ambient
# The ambient context lets a traced caller (the daemon's worker thread, the
# `unsnap study --trace` command) hand its identity to code it cannot pass
# arguments through -- specifically the campaign backend registry, whose
# `execute_iter` contract knows nothing about tracing.  Thread-local, so
# concurrent jobs on separate daemon workers never see each other's trace.
_AMBIENT = threading.local()


def current_trace() -> TraceContext | None:
    """The ambient :class:`TraceContext` of this thread, if any."""
    return getattr(_AMBIENT, "context", None)


@contextmanager
def use_trace(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Set the ambient trace context for the duration of the block."""
    previous = current_trace()
    _AMBIENT.context = context
    try:
        yield context
    finally:
        _AMBIENT.context = previous


class _Span:
    """One open span (the value yielded by :meth:`SpanExporter.span`)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "attrs")

    def __init__(self, trace_id, span_id, parent_id, name, start, attrs):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.attrs = attrs

    def context(self) -> TraceContext:
        """The context downstream work should inherit (this span as parent)."""
        return TraceContext(self.trace_id, self.span_id)


class SpanExporter:
    """Appends ``unsnap-trace-v1`` span events to one JSONL file.

    Thread-safe: writes take a lock, span nesting is tracked per thread.
    Every line is flushed as written, so a tail-reading observer (or a
    crash post-mortem) sees every *finished* span -- an exporter never
    buffers spans across operations.

    Parameters
    ----------
    path:
        The JSONL file (parents are created; the file is appended to).
    context:
        Default :class:`TraceContext` for spans emitted outside any
        enclosing span (fresh trace when omitted).
    attrs:
        Attributes stamped onto every span (e.g. ``worker_id``).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        context: TraceContext | None = None,
        attrs: dict | None = None,
    ):
        self.path = Path(path)
        self.context = context if context is not None else TraceContext.new()
        self.attrs = dict(attrs or {})
        self._lock = threading.Lock()
        self._local = threading.local()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------ plumbing
    def _stack(self) -> list[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _resolve(self, context: TraceContext | None) -> tuple[str, str | None]:
        """``(trace_id, parent_id)`` for a new span on this thread.

        An enclosing span on the same thread wins (same-trace nesting);
        otherwise the explicit or default context supplies both.
        """
        ctx = context if context is not None else self.context
        stack = self._stack()
        if stack and stack[-1].trace_id == ctx.trace_id:
            return ctx.trace_id, stack[-1].span_id
        return ctx.trace_id, (ctx.span_id or None)

    def _write(self, span: _Span, end: float, seconds: float | None = None) -> None:
        event = {
            "format": TRACE_FORMAT,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "start": span.start,
            "end": end,
            "seconds": max(0.0, end - span.start) if seconds is None else seconds,
            "attrs": span.attrs,
        }
        line = json.dumps(event, sort_keys=True) + "\n"
        with self._lock:
            if self._file.closed:
                return  # a straggler thread after close(); drop, never raise
            self._file.write(line)
            self._file.flush()

    # ------------------------------------------------------------- surface
    def emit(
        self,
        name: str,
        *,
        start: float,
        end: float,
        context: TraceContext | None = None,
        attrs: dict | None = None,
    ) -> str:
        """Record one already-measured span (e.g. a queue wait observed
        after the fact) and return its span id."""
        trace_id, parent_id = self._resolve(context)
        span = _Span(
            trace_id, new_span_id(), parent_id, name, float(start),
            {**self.attrs, **(attrs or {})},
        )
        self._write(span, float(end))
        return span.span_id

    @contextmanager
    def span(
        self,
        name: str,
        *,
        context: TraceContext | None = None,
        attrs: dict | None = None,
    ) -> Iterator[_Span]:
        """Time a block as one span; spans/phases opened inside (same
        thread) become its children.  The span is written on exit even when
        the block raises (with an ``error`` attribute naming the type)."""
        trace_id, parent_id = self._resolve(context)
        span = _Span(
            trace_id, new_span_id(), parent_id, name, _now(),
            {**self.attrs, **(attrs or {})},
        )
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.attrs = {**span.attrs, "error": type(exc).__name__}
            raise
        finally:
            stack.pop()
            self._write(span, _now())

    # ----------------------------------------------- telemetry phase hooks
    # Telemetry._push/_pop call these when an exporter is attached; the
    # dotted phase path is the span name, the phase duration the span
    # duration.  Phases ride the same per-thread stack as span(), so a
    # phase inside `with exporter.span("worker.execute")` nests under it.
    def phase_started(self, path: str, context: TraceContext | None = None) -> None:
        trace_id, parent_id = self._resolve(context)
        self._stack().append(
            _Span(trace_id, new_span_id(), parent_id, path, _now(), self.attrs)
        )

    def phase_finished(
        self, path: str, seconds: float, context: TraceContext | None = None
    ) -> None:
        stack = self._stack()
        if not stack or stack[-1].name != path:
            return  # attached mid-phase; drop the unmatched pop
        span = stack.pop()
        # The span duration is telemetry's perf_counter measurement, so the
        # trace and the phase breakdown agree to the bit ("end" is derived;
        # "seconds" is authoritative).
        self._write(span, span.start + float(seconds), seconds=float(seconds))

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "SpanExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_spans(paths: Iterable[str | Path] | str | Path) -> list[dict]:
    """Load span events from JSONL files and/or directories of them.

    Directories contribute every ``*.jsonl`` inside (the spool's
    ``trace/`` layout).  Lines that are not valid ``unsnap-trace-v1``
    events -- foreign files, a line cut short by a crash -- are skipped,
    never fatal.  Spans come back sorted by start time.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.glob("*.jsonl")))
        else:
            files.append(entry)
    spans = []
    for file in files:
        try:
            text = file.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and event.get("format") == TRACE_FORMAT:
                spans.append(event)
    spans.sort(key=lambda s: (s.get("start", 0.0), s.get("span_id", "")))
    return spans


def default_trace_path(base: str | Path, name: str) -> Path:
    """The conventional per-process trace file under a shared directory."""
    safe = "".join(c if c.isalnum() or c in "._-" else "-" for c in name)
    return Path(base) / f"{safe}.jsonl"
