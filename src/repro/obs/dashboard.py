"""Dashboards: the gateway's ``/dashboard`` page and spool status renderers.

Two surfaces, both dependency-free:

* :data:`DASHBOARD_HTML` -- a single self-contained HTML page served at
  ``GET /dashboard``.  It polls ``/stats`` and ``/jobs`` on a timer and,
  when a job is selected, attaches to the ndjson progress stream
  (``/jobs/{id}/progress``) to render the live telemetry phase breakdown.
  No framework, no CDN, no build step: the page must work on an
  air-gapped cluster head node exactly like everything else in the repo.
* :func:`render_spool_status` / :func:`render_spool_status_html` -- the
  ``unsnap spool status [--html]`` views over a :meth:`~repro.campaign.
  distributed.spool.SpoolDir.status` dict (claims, heartbeats, done/error
  counts and the quarantine with its ``.reason`` excerpts).
"""

from __future__ import annotations

import html

__all__ = ["DASHBOARD_HTML", "render_spool_status", "render_spool_status_html"]


def _fmt_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.1f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_spool_status(status: dict) -> str:
    """Aligned text view of a spool ``status()`` dict."""
    lines = [
        f"spool {status.get('root', '?')}",
        f"  pending      {status.get('pending', 0)}",
        f"  claimed      {len(status.get('claims', []))}",
        f"  done         {status.get('done', 0)}",
        f"  errors       {status.get('errors', 0)}",
        f"  quarantined  {len(status.get('quarantined', []))}",
        f"  stop         {'requested' if status.get('stop_requested') else '-'}",
    ]
    claims = status.get("claims", [])
    if claims:
        lines.append("claims:")
        for claim in claims:
            lines.append(
                f"  point {claim.get('index', '?'):>6} "
                f"attempt {claim.get('attempts', '?')} "
                f"owner {claim.get('worker_id', '?')} "
                f"age {_fmt_age(float(claim.get('age_seconds', 0.0)))}"
            )
    workers = status.get("workers", [])
    if workers:
        lines.append("workers:")
        for worker in workers:
            liveness = "live" if worker.get("live") else "stale"
            lines.append(
                f"  {worker.get('worker_id', '?')} "
                f"heartbeat {_fmt_age(float(worker.get('age_seconds', 0.0)))} "
                f"({liveness})"
            )
    quarantined = status.get("quarantined", [])
    if quarantined:
        lines.append("quarantine:")
        for entry in quarantined:
            reason = str(entry.get("reason", "")).strip() or "(no reason recorded)"
            if len(reason) > 100:
                reason = reason[:97] + "..."
            lines.append(f"  {entry.get('name', '?')}: {reason}")
    return "\n".join(lines)


def render_spool_status_html(status: dict) -> str:
    """The same status dict as one static HTML page (``--html``)."""
    e = html.escape

    def table(headers: list[str], rows: list[list[str]]) -> str:
        head = "".join(f"<th>{e(h)}</th>" for h in headers)
        body = "".join(
            "<tr>" + "".join(f"<td>{e(cell)}</td>" for cell in row) + "</tr>"
            for row in rows
        )
        return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"

    tiles = "".join(
        f'<div class="tile"><div class="num">{e(str(value))}</div>'
        f"<div>{e(label)}</div></div>"
        for label, value in (
            ("pending", status.get("pending", 0)),
            ("claimed", len(status.get("claims", []))),
            ("done", status.get("done", 0)),
            ("errors", status.get("errors", 0)),
            ("quarantined", len(status.get("quarantined", []))),
        )
    )
    sections = [f"<h1>spool {e(str(status.get('root', '?')))}</h1>", tiles]
    if status.get("stop_requested"):
        sections.append('<p class="warn">STOP requested: workers drain and exit.</p>')
    if status.get("claims"):
        sections.append("<h2>Claims</h2>")
        sections.append(
            table(
                ["point", "attempt", "owner", "age"],
                [
                    [
                        str(c.get("index", "?")),
                        str(c.get("attempts", "?")),
                        str(c.get("worker_id", "?")),
                        _fmt_age(float(c.get("age_seconds", 0.0))),
                    ]
                    for c in status["claims"]
                ],
            )
        )
    if status.get("workers"):
        sections.append("<h2>Workers</h2>")
        sections.append(
            table(
                ["worker", "heartbeat age", "liveness"],
                [
                    [
                        str(w.get("worker_id", "?")),
                        _fmt_age(float(w.get("age_seconds", 0.0))),
                        "live" if w.get("live") else "stale",
                    ]
                    for w in status["workers"]
                ],
            )
        )
    if status.get("quarantined"):
        sections.append("<h2>Quarantine</h2>")
        sections.append(
            table(
                ["job", "reason"],
                [
                    [str(q.get("name", "?")), str(q.get("reason", "")).strip()]
                    for q in status["quarantined"]
                ],
            )
        )
    body = "\n".join(sections)
    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>unsnap spool status</title>
<style>{_CSS}</style>
</head><body><main>{body}</main></body></html>
"""


_CSS = """
:root { color-scheme: light dark; }
body { font: 14px/1.45 system-ui, sans-serif; margin: 1.5rem; }
main { max-width: 60rem; margin: 0 auto; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.2rem; }
table { border-collapse: collapse; width: 100%; margin: .4rem 0; }
th, td { text-align: left; padding: .25rem .6rem; border-bottom: 1px solid #8884; }
th { font-weight: 600; }
.tile { display: inline-block; min-width: 6.5rem; margin: .2rem; padding: .5rem .8rem;
        border: 1px solid #8884; border-radius: .4rem; text-align: center; }
.tile .num { font-size: 1.4rem; font-weight: 700; font-variant-numeric: tabular-nums; }
.warn { color: #b45309; font-weight: 600; }
.bar { background: #60a5fa; height: .7rem; border-radius: .2rem; min-width: 2px; }
.muted { opacity: .65; }
pre { overflow-x: auto; }
"""

#: The live service dashboard served at ``GET /dashboard``: polls
#: ``/stats`` + ``/jobs`` every 2 seconds, streams a selected job's ndjson
#: progress endpoint and renders the telemetry phase breakdown as bars.
DASHBOARD_HTML = f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>unsnap service dashboard</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>{_CSS}</style>
</head><body><main>
<h1>unsnap service <span id="backend" class="muted"></span></h1>
<div id="tiles"></div>
<h2>Jobs</h2>
<table><thead><tr><th>id</th><th>state</th><th>key</th><th></th></tr></thead>
<tbody id="jobs"></tbody></table>
<h2>Progress <span id="watching" class="muted"></span></h2>
<div id="phases" class="muted">select a job to stream its progress</div>
<script>
"use strict";
const fmt = (x) => typeof x === "number" ? (Number.isInteger(x) ? x : x.toFixed(3)) : x;
function tile(label, value) {{
  return `<div class="tile"><div class="num">${{fmt(value)}}</div><div>${{label}}</div></div>`;
}}
async function refresh() {{
  try {{
    const stats = await (await fetch("/stats")).json();
    document.getElementById("backend").textContent =
      `backend=${{stats.backend}} workers=${{stats.workers}}`;
    const jobs = stats.jobs || {{}};
    let tiles =
      tile("queued", jobs.queued || 0) + tile("running", jobs.running || 0) +
      tile("done", jobs.done || 0) + tile("failed", jobs.failed || 0) +
      tile("queue depth", stats.queue_depth || 0) +
      tile("cache hit %", Math.round(100 * (stats.cache_hit_ratio || 0)));
    if (stats.store) tiles += tile("store records", stats.store.records);
    document.getElementById("tiles").innerHTML = tiles;
    const list = (await (await fetch("/jobs")).json()).jobs || [];
    document.getElementById("jobs").innerHTML = list.map((j) =>
      `<tr><td>${{j.id}}</td><td>${{j.state}}</td>` +
      `<td class="muted">${{(j.key || "").slice(0, 16)}}</td>` +
      `<td><a href="#" onclick="watch(${{j.id}}); return false;">progress</a></td></tr>`
    ).join("");
  }} catch (err) {{
    document.getElementById("backend").textContent = `(unreachable: ${{err}})`;
  }}
}}
function renderPhases(snapshot) {{
  const phases = (snapshot.telemetry || {{}}).phases || {{}};
  const names = Object.keys(phases);
  const header = `<p>job ${{snapshot.id}}: <strong>${{snapshot.state}}</strong>` +
    (snapshot.error ? ` — ${{snapshot.error}}` : "") + `</p>`;
  if (!names.length) {{
    document.getElementById("phases").innerHTML = header +
      `<p class="muted">no telemetry phases (yet)</p>`;
    return;
  }}
  const max = Math.max(...names.map((n) => phases[n].seconds));
  document.getElementById("phases").innerHTML = header +
    `<table><tbody>` + names.sort().map((n) =>
      `<tr><td>${{n}}</td><td>${{phases[n].seconds.toFixed(4)}}s</td>` +
      `<td style="width:50%"><div class="bar" style="width:${{
        max > 0 ? Math.round(100 * phases[n].seconds / max) : 0}}%"></div></td></tr>`
    ).join("") + `</tbody></table>`;
}}
async function watch(id) {{
  document.getElementById("watching").textContent = `(job ${{id}})`;
  const response = await fetch(`/jobs/${{id}}/progress?interval=0.5`);
  const reader = response.body.getReader();
  const decoder = new TextDecoder();
  let buffer = "";
  for (;;) {{
    const {{done, value}} = await reader.read();
    if (done) break;
    buffer += decoder.decode(value, {{stream: true}});
    const lines = buffer.split("\\n");
    buffer = lines.pop();
    for (const line of lines) if (line.trim()) renderPhases(JSON.parse(line));
  }}
}}
refresh();
setInterval(refresh, 2000);
</script>
</main></body></html>
"""
