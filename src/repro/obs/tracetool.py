"""Trace aggregation: the engine behind ``unsnap trace summary|tree``.

Joins the per-process ``unsnap-trace-v1`` JSONL files (the daemon's
``--trace`` file plus every spool worker's ``trace/{worker_id}.jsonl``)
into per-trace reports:

* :func:`summarize` -- per-phase wall-clock totals, per-worker busy time,
  queue-wait attribution (``service.queue`` + ``spool.wait`` spans) and
  the critical path (the root-to-leaf chain that finished last);
* :func:`format_tree` -- the span forest, indented by parentage, in start
  order.

Both tolerate the realities of multi-process capture: spans from files
that were never flushed are simply absent, and a span whose parent is
missing is reported as an *orphan* (the contiguity check the CI obs-smoke
job asserts to be zero) while still appearing in the output as a root.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "group_traces",
    "summarize",
    "summarize_all",
    "format_summary",
    "format_tree",
]

#: Span names that represent waiting for capacity rather than working.
QUEUE_SPANS = frozenset({"service.queue", "spool.wait"})


def group_traces(spans: Iterable[dict]) -> dict[str, list[dict]]:
    """Bucket span events by ``trace_id`` (insertion-ordered)."""
    traces: dict[str, list[dict]] = {}
    for span in spans:
        trace_id = str(span.get("trace_id", ""))
        if trace_id:
            traces.setdefault(trace_id, []).append(span)
    return traces


def _forest(spans: Sequence[dict]) -> tuple[list[dict], dict[str, list[dict]], int]:
    """``(roots, children-by-span-id, orphan count)`` of one trace.

    A span with ``parent_id=None`` is a root; a span whose parent id is
    not among the spans is an *orphan* -- rendered as a root so it is
    never silently dropped, but counted separately (a contiguous trace
    has zero orphans).
    """
    by_id = {str(s.get("span_id")): s for s in spans}
    roots: list[dict] = []
    children: dict[str, list[dict]] = {}
    orphans = 0
    for span in spans:
        parent = span.get("parent_id")
        if parent and str(parent) in by_id:
            children.setdefault(str(parent), []).append(span)
        else:
            if parent:
                orphans += 1
            roots.append(span)
    key = lambda s: (s.get("start", 0.0), s.get("span_id", ""))  # noqa: E731
    roots.sort(key=key)
    for siblings in children.values():
        siblings.sort(key=key)
    return roots, children, orphans


def _critical_path(
    roots: Sequence[dict], children: dict[str, list[dict]]
) -> list[dict]:
    """The chain of spans ending latest: from the last-finishing root,
    repeatedly descend into the last-finishing child.  This is the path a
    latency investigation walks first -- everything else overlapped it."""
    if not roots:
        return []
    path = []
    node = max(roots, key=lambda s: s.get("end", 0.0))
    while node is not None:
        path.append(node)
        below = children.get(str(node.get("span_id")), [])
        node = max(below, key=lambda s: s.get("end", 0.0)) if below else None
    return path


def summarize(trace_id: str, spans: Sequence[dict]) -> dict:
    """Aggregate one trace's spans into the summary dict.

    Keys: ``trace_id``, ``spans``, ``orphans``, ``makespan_seconds``
    (first start to last end), ``queue_wait_seconds`` (sum over
    ``service.queue``/``spool.wait`` spans), ``phases`` (name ->
    seconds/calls), ``workers`` (worker_id -> execute spans/busy seconds)
    and ``critical_path`` (name/seconds chain).
    """
    roots, children, orphans = _forest(spans)
    phases: dict[str, dict] = {}
    workers: dict[str, dict] = {}
    queue_wait = 0.0
    for span in spans:
        name = str(span.get("name", "?"))
        seconds = float(span.get("seconds", 0.0))
        entry = phases.setdefault(name, {"seconds": 0.0, "calls": 0})
        entry["seconds"] += seconds
        entry["calls"] += 1
        if name in QUEUE_SPANS:
            queue_wait += seconds
        attrs = span.get("attrs") or {}
        worker = attrs.get("worker_id")
        if worker is not None:
            stat = workers.setdefault(
                str(worker), {"spans": 0, "busy_seconds": 0.0}
            )
            stat["spans"] += 1
            if name == "worker.execute":
                stat["busy_seconds"] += seconds
    starts = [float(s.get("start", 0.0)) for s in spans]
    ends = [float(s.get("end", 0.0)) for s in spans]
    return {
        "trace_id": trace_id,
        "spans": len(spans),
        "orphans": orphans,
        "makespan_seconds": (max(ends) - min(starts)) if spans else 0.0,
        "queue_wait_seconds": queue_wait,
        "phases": {name: phases[name] for name in sorted(phases)},
        "workers": {wid: workers[wid] for wid in sorted(workers)},
        "critical_path": [
            {"name": str(s.get("name", "?")), "seconds": float(s.get("seconds", 0.0))}
            for s in _critical_path(roots, children)
        ],
    }


def summarize_all(spans: Iterable[dict]) -> list[dict]:
    """One summary per trace, longest makespan first."""
    summaries = [
        summarize(trace_id, trace_spans)
        for trace_id, trace_spans in group_traces(spans).items()
    ]
    summaries.sort(key=lambda s: -s["makespan_seconds"])
    return summaries


# ------------------------------------------------------------- rendering
def _rows(pairs: Sequence[tuple[str, str]], indent: str = "  ") -> list[str]:
    width = max((len(label) for label, _ in pairs), default=0)
    return [f"{indent}{label.ljust(width)}  {value}" for label, value in pairs]


def format_summary(summary: dict) -> str:
    """Aligned-column text for one :func:`summarize` result."""
    lines = [
        f"trace {summary['trace_id']}: {summary['spans']} spans, "
        f"{summary['orphans']} orphan(s), "
        f"makespan {summary['makespan_seconds']:.3f}s, "
        f"queue wait {summary['queue_wait_seconds']:.3f}s"
    ]
    if summary["phases"]:
        lines.append("phases:")
        lines.extend(
            _rows(
                [
                    (name, f"{entry['seconds']:.4f}s x{entry['calls']}")
                    for name, entry in summary["phases"].items()
                ]
            )
        )
    if summary["workers"]:
        lines.append("workers:")
        lines.extend(
            _rows(
                [
                    (wid, f"busy {stat['busy_seconds']:.4f}s ({stat['spans']} spans)")
                    for wid, stat in summary["workers"].items()
                ]
            )
        )
    if summary["critical_path"]:
        lines.append("critical path:")
        lines.extend(
            _rows(
                [
                    (step["name"], f"{step['seconds']:.4f}s")
                    for step in summary["critical_path"]
                ]
            )
        )
    return "\n".join(lines)


def format_tree(spans: Sequence[dict]) -> str:
    """The span forest of every trace, indented by parentage."""
    lines = []
    for trace_id, trace_spans in group_traces(spans).items():
        roots, children, orphans = _forest(trace_spans)
        origin = min(
            (float(s.get("start", 0.0)) for s in trace_spans), default=0.0
        )
        suffix = f", {orphans} orphan(s)" if orphans else ""
        lines.append(f"trace {trace_id} ({len(trace_spans)} spans{suffix})")

        def _render(span: dict, depth: int) -> None:
            attrs = span.get("attrs") or {}
            worker = attrs.get("worker_id")
            note = f" [{worker}]" if worker is not None else ""
            offset = float(span.get("start", 0.0)) - origin
            lines.append(
                f"{'  ' * depth}+{offset:.3f}s {span.get('name', '?')} "
                f"{float(span.get('seconds', 0.0)):.4f}s{note}"
            )
            for child in children.get(str(span.get("span_id")), []):
                _render(child, depth + 1)

        for root in roots:
            _render(root, 1)
    return "\n".join(lines)
