"""Metrics export: counters and gauges in Prometheus text exposition format.

A :class:`MetricsRegistry` is a list of *sources* -- zero-argument
callables returning :class:`Metric` descriptors -- snapshotted on every
scrape, so the registry itself holds no state and a scrape always reflects
the live daemon/spool/telemetry numbers.  Rendering follows the Prometheus
text exposition format (``# HELP`` / ``# TYPE`` / samples with escaped
labels), which every Prometheus-compatible scraper parses; counters carry
the conventional ``_total`` suffix.

The three stock sources translate the existing payloads -- nothing is
counted twice:

* :func:`service_metrics` -- the daemon's ``/stats`` dict (jobs by state,
  queue depth, dedup counters, cache hit ratio, store statistics);
* :func:`telemetry_metrics` -- a :class:`~repro.telemetry.Telemetry`
  snapshot (factor-cache hits/misses/spills/bytes, sweep counters, the
  coordinator's ``distributed.*`` steal/dispatch counters);
* :func:`spool_metrics` -- a :meth:`~repro.campaign.distributed.spool.
  SpoolDir.status` dict (pending/claimed/done/quarantined jobs, per-worker
  heartbeat ages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = [
    "Metric",
    "MetricsRegistry",
    "render_metrics",
    "service_metrics",
    "telemetry_metrics",
    "spool_metrics",
]


@dataclass
class Metric:
    """One exported metric: a name, a kind, and labelled samples."""

    name: str
    kind: str  # "gauge" | "counter"
    help: str
    samples: list[tuple[dict, float]] = field(default_factory=list)

    def add(self, value: float, **labels: str) -> "Metric":
        self.samples.append((labels, float(value)))
        return self


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_metrics(metrics: Iterable[Metric]) -> str:
    """Render metrics in Prometheus text exposition format.

    Same-name metrics are merged (one ``HELP``/``TYPE`` block, all
    samples), names are emitted in sorted order so scrapes diff cleanly.
    """
    merged: dict[str, Metric] = {}
    for metric in metrics:
        existing = merged.get(metric.name)
        if existing is None:
            merged[metric.name] = Metric(
                metric.name, metric.kind, metric.help, list(metric.samples)
            )
        else:
            existing.samples.extend(metric.samples)
    lines = []
    for name in sorted(merged):
        metric = merged[name]
        lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        for labels, value in metric.samples:
            if labels:
                label_text = ",".join(
                    f'{key}="{_escape_label(val)}"' for key, val in sorted(labels.items())
                )
                lines.append(f"{name}{{{label_text}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


class MetricsRegistry:
    """Snapshot-on-scrape registry of metric sources.

    A failing source never fails the scrape: its exception is swallowed
    and counted in ``unsnap_metrics_source_errors_total``, so one wedged
    subsystem (an unreachable spool mount, say) cannot take down the
    monitoring of the rest.
    """

    def __init__(self) -> None:
        self._sources: list[Callable[[], Iterable[Metric]]] = []

    def add_source(
        self, source: Callable[[], Iterable[Metric]]
    ) -> Callable[[], Iterable[Metric]]:
        self._sources.append(source)
        return source

    def collect(self) -> list[Metric]:
        metrics: list[Metric] = []
        errors = 0
        for source in self._sources:
            try:
                metrics.extend(source())
            except Exception:  # noqa: BLE001 - scrape isolation boundary
                errors += 1
        metrics.append(
            Metric(
                "unsnap_metrics_source_errors_total",
                "counter",
                "Metric sources that raised during this scrape.",
            ).add(errors)
        )
        return metrics

    def render(self) -> str:
        return render_metrics(self.collect())


# ------------------------------------------------------------ stock sources
def service_metrics(stats: dict) -> list[Metric]:
    """Translate the daemon's ``/stats`` payload (see ``ServiceDaemon.stats``)."""
    jobs = Metric(
        "unsnap_service_jobs", "gauge", "Retained service jobs by state."
    )
    for state, count in stats.get("jobs", {}).items():
        jobs.add(count, state=state)
    metrics = [
        jobs,
        Metric(
            "unsnap_service_queue_depth", "gauge", "Jobs waiting in the bounded queue."
        ).add(stats.get("queue_depth", 0)),
        Metric(
            "unsnap_service_queue_limit", "gauge", "Bounded-queue capacity."
        ).add(stats.get("max_queue_depth", 0)),
        Metric(
            "unsnap_service_workers", "gauge", "Worker threads draining the queue."
        ).add(stats.get("workers", 0)),
        Metric(
            "unsnap_service_submitted_total", "counter", "Jobs accepted by submit()."
        ).add(stats.get("submitted", 0)),
        Metric(
            "unsnap_service_executed_total", "counter", "Jobs that ran a fresh solve."
        ).add(stats.get("executed", 0)),
        Metric(
            "unsnap_service_cache_hits_total",
            "counter",
            "Jobs served from the store or a coalesced in-flight twin.",
        ).add(stats.get("cache_hits", 0)),
        Metric(
            "unsnap_service_store_hits_total", "counter", "Jobs served from the store."
        ).add(stats.get("store_hits", 0)),
        Metric(
            "unsnap_service_coalesced_hits_total",
            "counter",
            "Jobs served from an identical in-flight job.",
        ).add(stats.get("coalesced_hits", 0)),
        Metric(
            "unsnap_service_cache_hit_ratio",
            "gauge",
            "Served-from-cache fraction of settled jobs.",
        ).add(stats.get("cache_hit_ratio", 0.0)),
    ]
    store = stats.get("store")
    if isinstance(store, dict):
        metrics.extend(
            [
                Metric(
                    "unsnap_store_records", "gauge", "Records in the attached store."
                ).add(store.get("records", 0)),
                Metric(
                    "unsnap_store_hits_total", "counter", "Store lookups that hit."
                ).add(store.get("hits", 0)),
                Metric(
                    "unsnap_store_misses_total", "counter", "Store lookups that missed."
                ).add(store.get("misses", 0)),
            ]
        )
    return metrics


def telemetry_metrics(telemetry) -> list[Metric]:
    """Translate a :class:`~repro.telemetry.Telemetry` into generic series.

    Counters (factor-cache hits/misses/spills, local solves, the
    coordinator's ``distributed.claims_stolen`` steal count, ...) become
    ``unsnap_run_counter_total{counter="..."}``; gauges
    (``factor_cache_bytes``, pool occupancy) become
    ``unsnap_run_gauge{gauge="..."}``; phase wall-clock totals become
    ``unsnap_run_phase_seconds_total{phase="..."}``.
    """
    snapshot = telemetry.snapshot()
    counters = Metric(
        "unsnap_run_counter_total",
        "counter",
        "Accumulated run telemetry counters across finished jobs.",
    )
    for name, value in snapshot.get("counters", {}).items():
        counters.add(value, counter=name)
    gauges = Metric(
        "unsnap_run_gauge", "gauge", "Last-written run telemetry gauges."
    )
    for name, value in snapshot.get("gauges", {}).items():
        gauges.add(value, gauge=name)
    phases = Metric(
        "unsnap_run_phase_seconds_total",
        "counter",
        "Accumulated wall seconds per telemetry phase across finished jobs.",
    )
    calls = Metric(
        "unsnap_run_phase_calls_total",
        "counter",
        "Accumulated phase entries across finished jobs.",
    )
    for path, entry in snapshot.get("phases", {}).items():
        phases.add(entry.get("seconds", 0.0), phase=path)
        calls.add(entry.get("calls", 0), phase=path)
    return [counters, gauges, phases, calls]


def spool_metrics(status: dict) -> list[Metric]:
    """Translate a spool :meth:`~repro.campaign.distributed.spool.SpoolDir.
    status` dict (pending/claimed/done/quarantined, heartbeat ages)."""
    jobs = Metric(
        "unsnap_spool_jobs", "gauge", "Spool jobs by protocol state."
    )
    jobs.add(status.get("pending", 0), state="pending")
    jobs.add(len(status.get("claims", [])), state="claimed")
    jobs.add(status.get("done", 0), state="done")
    jobs.add(status.get("errors", 0), state="error")
    jobs.add(len(status.get("quarantined", [])), state="quarantined")
    heartbeats = Metric(
        "unsnap_spool_worker_heartbeat_age_seconds",
        "gauge",
        "Seconds since each spool worker's heartbeat file moved.",
    )
    live = 0
    for worker in status.get("workers", []):
        heartbeats.add(worker.get("age_seconds", 0.0), worker_id=worker.get("worker_id", "?"))
        live += 1 if worker.get("live") else 0
    return [
        jobs,
        heartbeats,
        Metric(
            "unsnap_spool_workers_live",
            "gauge",
            "Spool workers whose heartbeat moved within the lease.",
        ).add(live),
        Metric(
            "unsnap_spool_stop_requested",
            "gauge",
            "1 when the spool's STOP marker is present.",
        ).add(1 if status.get("stop_requested") else 0),
    ]
