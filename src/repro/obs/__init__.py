"""Observability: cross-process tracing, metrics export and dashboards.

The seventh registry-adjacent subsystem.  Three layers, all opt-in and all
dependency-free:

* :mod:`repro.obs.trace` -- run-scoped ``trace_id``/``span_id`` context
  riding the :class:`~repro.telemetry.Telemetry` phase hooks, written as
  append-only ``unsnap-trace-v1`` JSONL span events and propagated across
  the HTTP gateway (``X-Unsnap-Trace`` header) and the distributed spool
  (``trace`` field of the ``unsnap-spool-job-v1`` payload), so one campaign
  is one trace from :class:`~repro.service.client.ServiceClient` through
  daemon queue wait, spool claim and per-worker sweep phases;
* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` snapshotting
  daemon/spool/telemetry counters into Prometheus text exposition format
  (the gateway's ``GET /metrics``);
* :mod:`repro.obs.dashboard` / :mod:`repro.obs.tracetool` -- the
  dependency-free HTML page behind ``GET /dashboard``, the ``unsnap spool
  status`` renderers, and the ``unsnap trace summary|tree`` aggregation.

The PR-5 telemetry contract extends unchanged to the exporter: every hook
is ``is None``-guarded, an unattached run executes the exact
pre-instrumentation path, and an attached exporter never changes a bit of
the numerics (asserted by the engine contract's telemetry clause).
"""

from .metrics import Metric, MetricsRegistry, render_metrics
from .trace import (
    TRACE_FORMAT,
    SpanExporter,
    TraceContext,
    current_trace,
    new_span_id,
    new_trace_id,
    read_spans,
    use_trace,
)

__all__ = [
    "TRACE_FORMAT",
    "TraceContext",
    "SpanExporter",
    "current_trace",
    "use_trace",
    "new_trace_id",
    "new_span_id",
    "read_spans",
    "Metric",
    "MetricsRegistry",
    "render_metrics",
]
