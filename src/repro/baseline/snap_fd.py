"""SNAP's diamond-difference discrete-ordinates sweep on a structured grid.

This is the finite-difference baseline of the paper's Section II-A: the
diamond-difference auxiliary relations state that the cell-centred angular
flux equals the average of each opposite pair of face fluxes.  Substituting
them into the streaming operator gives the classic cell-centred update

.. math::

    \\psi_c = \\frac{S + 2|\\mu|/\\Delta x\\,\\psi^{in}_x + 2|\\eta|/\\Delta y\\,
              \\psi^{in}_y + 2|\\xi|/\\Delta z\\,\\psi^{in}_z}
             {\\sigma_t + 2|\\mu|/\\Delta x + 2|\\eta|/\\Delta y + 2|\\xi|/\\Delta z}

with outgoing face fluxes ``psi_out = 2 psi_c - psi_in`` (a single
multiply-add per relation, as the paper notes), swept cell by cell in the
direction of particle travel.  The iteration structure (inner/outer source
iterations, scalar flux as the weighted angular sum) is identical to the
DGFEM solver so that the two can be compared one-to-one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..angular.quadrature import AngularQuadrature, snap_dummy_quadrature
from ..materials.cross_sections import CrossSections
from ..materials.library import snap_option1_materials

__all__ = ["DiamondDifferenceResult", "SnapDiamondDifferenceSolver"]


@dataclass
class DiamondDifferenceResult:
    """Result of a diamond-difference solve.

    Attributes
    ----------
    scalar_flux:
        ``(nx, ny, nz, G)`` cell-centred scalar flux.
    leakage:
        ``(G,)`` net boundary leakage of the final sweep.
    inner_errors:
        Maximum relative scalar-flux change per inner iteration.
    num_negative_fixups:
        Number of cell/angle/group updates clipped by the negative-flux fixup
        (0 when the fixup is disabled).
    """

    scalar_flux: np.ndarray
    leakage: np.ndarray
    inner_errors: list[float] = field(default_factory=list)
    num_negative_fixups: int = 0

    def cell_average(self) -> np.ndarray:
        return self.scalar_flux

    def memory_footprint_per_cell(self) -> int:
        """Angular-flux storage per cell/angle/group: one FP64 value."""
        return 8


class SnapDiamondDifferenceSolver:
    """The SNAP finite-difference baseline on a structured Cartesian grid.

    Parameters
    ----------
    nx, ny, nz:
        Grid dimensions.
    lx, ly, lz:
        Domain extents.
    cross_sections:
        Homogeneous material cross sections (defaults to SNAP option 1).
    quadrature:
        Angular quadrature (defaults to the SNAP dummy set).
    source_strength:
        Uniform volumetric fixed source.
    num_inners, num_outers:
        Iteration counts, matching the DGFEM solver's controller.
    negative_flux_fixup:
        Apply the set-to-zero fixup to negative outgoing face fluxes (SNAP's
        optional fixup); disabled by default to match plain diamond
        difference.
    incident_flux:
        Isotropic angular flux entering through every domain boundary face
        (0 reproduces SNAP's vacuum boundary).
    angular_source:
        Optional ``(A, nx, ny, nz, G)`` per-ordinate source density added on
        top of the uniform fixed source -- the method-of-manufactured-
        solutions hook mirroring :meth:`repro.core.sweep.SweepExecutor.sweep`,
        used by :mod:`repro.verify.mms` for the FD convergence-order check.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        nz: int,
        lx: float = 1.0,
        ly: float = 1.0,
        lz: float = 1.0,
        cross_sections: CrossSections | None = None,
        quadrature: AngularQuadrature | None = None,
        num_groups: int = 4,
        angles_per_octant: int = 4,
        source_strength: float = 1.0,
        num_inners: int = 5,
        num_outers: int = 1,
        inner_tolerance: float = 0.0,
        negative_flux_fixup: bool = False,
        incident_flux: float = 0.0,
        angular_source: np.ndarray | None = None,
    ):
        if min(nx, ny, nz) < 1:
            raise ValueError("grid must have at least one cell per axis")
        self.nx, self.ny, self.nz = nx, ny, nz
        self.dx, self.dy, self.dz = lx / nx, ly / ny, lz / nz
        self.xs = (
            cross_sections if cross_sections is not None else snap_option1_materials(num_groups)
        )
        self.quadrature = (
            quadrature if quadrature is not None else snap_dummy_quadrature(angles_per_octant)
        )
        self.num_groups = self.xs.num_groups
        self.source_strength = float(source_strength)
        self.num_inners = int(num_inners)
        self.num_outers = int(num_outers)
        self.inner_tolerance = float(inner_tolerance)
        self.negative_flux_fixup = bool(negative_flux_fixup)
        self.incident_flux = float(incident_flux)
        self.angular_source = None
        if angular_source is not None:
            angular_source = np.asarray(angular_source, dtype=float)
            expected = (self.quadrature.num_angles, nx, ny, nz, self.num_groups)
            if angular_source.shape != expected:
                raise ValueError(
                    f"angular_source must have shape {expected}, got {angular_source.shape}"
                )
            self.angular_source = angular_source

    # ------------------------------------------------------------------ solve
    def solve(self) -> DiamondDifferenceResult:
        """Run the inner/outer source iteration with diamond-difference sweeps."""
        shape = (self.nx, self.ny, self.nz, self.num_groups)
        scalar = np.zeros(shape, dtype=float)
        q_fixed = np.full(shape, self.source_strength, dtype=float)
        inner_errors: list[float] = []
        leakage = np.zeros(self.num_groups, dtype=float)
        fixups = 0

        sigma_s = self.xs.sigma_s
        eye = np.eye(self.num_groups, dtype=bool)
        cross = np.where(eye, 0.0, sigma_s)
        within = np.where(eye, sigma_s, 0.0)

        for _outer in range(self.num_outers):
            outer_flux = scalar.copy()
            outer_source = q_fixed + np.einsum("fg,xyzf->xyzg", cross, outer_flux)
            for _inner in range(self.num_inners):
                total_source = outer_source + np.einsum("fg,xyzf->xyzg", within, scalar)
                new_scalar, leakage, fixups = self._sweep(total_source)
                denom = np.maximum(np.abs(new_scalar), 1e-12)
                err = float(np.max(np.abs(new_scalar - scalar) / denom))
                inner_errors.append(err)
                scalar = new_scalar
                if self.inner_tolerance > 0.0 and err <= self.inner_tolerance:
                    break

        return DiamondDifferenceResult(
            scalar_flux=scalar,
            leakage=leakage,
            inner_errors=inner_errors,
            num_negative_fixups=fixups,
        )

    # ------------------------------------------------------------------ sweep
    def _sweep(self, total_source: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        """One full sweep of all octants and angles; returns the new scalar flux."""
        nx, ny, nz, ng = self.nx, self.ny, self.nz, self.num_groups
        scalar = np.zeros((nx, ny, nz, ng), dtype=float)
        leakage = np.zeros(ng, dtype=float)
        sigma_t = self.xs.sigma_t  # (G,)
        fixups = 0

        area_x = self.dy * self.dz
        area_y = self.dx * self.dz
        area_z = self.dx * self.dy
        volume = self.dx * self.dy * self.dz

        for angle in range(self.quadrature.num_angles):
            mu, eta, xi = self.quadrature.directions[angle]
            weight = self.quadrature.weights[angle]
            angle_source = (
                total_source
                if self.angular_source is None
                else total_source + self.angular_source[angle]
            )
            cx = 2.0 * abs(mu) / self.dx
            cy = 2.0 * abs(eta) / self.dy
            cz = 2.0 * abs(xi) / self.dz
            denom = sigma_t + cx + cy + cz  # (G,)

            x_range = range(nx) if mu > 0 else range(nx - 1, -1, -1)
            y_range = range(ny) if eta > 0 else range(ny - 1, -1, -1)
            z_range = range(nz) if xi > 0 else range(nz - 1, -1, -1)

            # Incoming face fluxes at the entry boundary (vacuum by default,
            # or the prescribed incident flux): one (G,) vector per
            # transverse position, updated as the sweep marches.
            psi_in_x = np.full((ny, nz, ng), self.incident_flux, dtype=float)
            for i in x_range:
                psi_in_y = np.full((nz, ng), self.incident_flux, dtype=float)
                for j in y_range:
                    psi_in_z = np.full(ng, self.incident_flux, dtype=float)
                    for k in z_range:
                        numer = (
                            angle_source[i, j, k]
                            + cx * psi_in_x[j, k]
                            + cy * psi_in_y[k]
                            + cz * psi_in_z
                        )
                        psi_c = numer / denom
                        out_x = 2.0 * psi_c - psi_in_x[j, k]
                        out_y = 2.0 * psi_c - psi_in_y[k]
                        out_z = 2.0 * psi_c - psi_in_z
                        if self.negative_flux_fixup:
                            neg = (out_x < 0.0) | (out_y < 0.0) | (out_z < 0.0)
                            if np.any(neg):
                                fixups += int(np.count_nonzero(neg))
                                out_x = np.maximum(out_x, 0.0)
                                out_y = np.maximum(out_y, 0.0)
                                out_z = np.maximum(out_z, 0.0)
                        psi_in_x[j, k] = out_x
                        psi_in_y[k] = out_y
                        psi_in_z = out_z
                        scalar[i, j, k] += weight * psi_c
                        # Boundary leakage contributions on exiting faces.
                        if (mu > 0 and i == nx - 1) or (mu < 0 and i == 0):
                            leakage += weight * abs(mu) * area_x * out_x
                        if (eta > 0 and j == ny - 1) or (eta < 0 and j == 0):
                            leakage += weight * abs(eta) * area_y * out_y
                        if (xi > 0 and k == nz - 1) or (xi < 0 and k == 0):
                            leakage += weight * abs(xi) * area_z * out_z
        # The source is defined per unit volume; scalar flux is per cell centre.
        del volume
        return scalar, leakage, fixups

    # ------------------------------------------------------------ diagnostics
    def particle_balance_residual(self, result: DiamondDifferenceResult) -> float:
        """Relative residual of (emission - absorption - leakage) summed over groups."""
        volume = self.dx * self.dy * self.dz
        emission = self.source_strength * self.nx * self.ny * self.nz * volume * self.num_groups
        sigma_a = self.xs.sigma_a
        absorption = float(np.einsum("xyzg,g->", result.scalar_flux, sigma_a) * volume)
        residual = emission - absorption - float(result.leakage.sum())
        return abs(residual) / emission if emission > 0 else abs(residual)
