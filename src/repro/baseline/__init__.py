"""Baselines: the structured finite-difference SNAP algorithm.

Section II of the paper contrasts the discontinuous Galerkin finite element
method with SNAP's diamond-difference finite-difference discretisation on the
structured grid (work per cell, memory footprint, accuracy order).  This
sub-package implements that baseline so the trade-off discussion of
Section II-C can be reproduced quantitatively.
"""

from .snap_fd import SnapDiamondDifferenceSolver, DiamondDifferenceResult

__all__ = ["SnapDiamondDifferenceSolver", "DiamondDifferenceResult"]
