"""Study-execution backend comparison: serial vs thread vs process.

The measurement body is now the registered ``study-backends`` benchmark case
(the same order x engine :class:`repro.Study` through every registered
campaign backend); ``unsnap bench --filter study --json`` writes the
machine-readable ``unsnap-bench-v1`` record CI archives (the successor of
the old hand-rolled ``BENCH_study.json`` shape).

Under CPython the ``process`` backend pays a fork/pickle tax per run, so on
tiny grids it usually *loses* to ``serial`` -- the point of the record is to
watch that crossover as workloads grow.  The backend contract itself
(identical flux per grid point whatever the backend) is asserted both here
(via the case's ``mean_flux`` metrics) and bit-for-bit by the verify
conformance suite.
"""

import os

import pytest

from repro.bench import BenchWorkload
from repro.bench.registry import get_benchmark
from repro.bench.suite import run_benchmarks, run_case

#: Legacy knob: write the backend comparison record here when set.
STUDY_BENCH_JSON = os.environ.get("UNSNAP_BENCH_STUDY_JSON")


@pytest.fixture(scope="module")
def case_report():
    workload = BenchWorkload.from_env().with_(repeats=1, warmup=0)
    return run_case(get_benchmark("study-backends"), workload)


def test_every_backend_measured(case_report):
    names = {sample.name for sample in case_report.samples}
    assert names >= {"serial", "thread", "process"}
    assert all(sample.best > 0 for sample in case_report.samples)
    runs = {sample.metrics["runs"] for sample in case_report.samples}
    assert len(runs) == 1


def test_backends_equivalent(case_report):
    """Every backend produced the identical per-point mean flux."""
    serial = case_report.sample("serial").metrics["mean_flux"]
    for sample in case_report.samples:
        assert sample.metrics["mean_flux"] == serial, sample.name


def test_print_backend_comparison(case_report):
    serial = case_report.sample("serial").best
    print("\nstudy backend comparison "
          f"({case_report.sample('serial').metrics['runs']} runs/backend):")
    for sample in case_report.samples:
        print(f"  {sample.name:8s}: {sample.best:.3f} s  "
              f"({serial / sample.best:.2f}x vs serial)")
    if STUDY_BENCH_JSON:
        workload = BenchWorkload.from_env().with_(repeats=1, warmup=0)
        report = run_benchmarks(["study"], workload=workload)
        print(f"  wrote {report.save(STUDY_BENCH_JSON)}")
    # No ordering assertion between backends: wall-clock comparisons are
    # noisy on shared CI boxes (and the fork tax dominates tiny grids).
