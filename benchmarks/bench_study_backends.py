"""Study-execution backend comparison: serial vs thread vs process.

Times the same order x engine grid (``repro.Study``) executed through every
built-in campaign backend and writes the comparison to ``BENCH_study.json``
so CI can archive the batch-execution trajectory next to the engine numbers.
The workload is shrinkable through the ``UNSNAP_BENCH_*`` environment
variables (the same knobs as ``bench_kernels.py``); ``UNSNAP_BENCH_JOBS``
caps the worker pools.

Under CPython the ``process`` backend pays a fork/pickle tax per run, so on
the tiny default grid it usually *loses* to ``serial`` -- the point of the
record is to watch that crossover as workloads grow.  The benchmark also
asserts the backends' contract: identical mean flux per grid point whatever
the backend.
"""

import json
import os
import platform
import time

import numpy as np
import pytest

from repro.campaign import Study, run_study
from repro.config import ProblemSpec

BACKENDS = ("serial", "thread", "process")

STUDY_BENCH = dict(
    n=int(os.environ.get("UNSNAP_BENCH_N", "4")),
    angles_per_octant=int(os.environ.get("UNSNAP_BENCH_NANG", "2")),
    num_groups=int(os.environ.get("UNSNAP_BENCH_GROUPS", "4")),
    orders=(1, 2),
    engines=("vectorized", "prefactorized"),
    jobs=int(os.environ.get("UNSNAP_BENCH_JOBS", "4")),
)

#: Where ``test_print_backend_comparison`` writes the machine-readable record.
STUDY_BENCH_JSON = os.environ.get("UNSNAP_BENCH_STUDY_JSON", "BENCH_study.json")

_backend_runs = {}


def _bench_study() -> Study:
    cfg = STUDY_BENCH
    base = ProblemSpec(
        nx=cfg["n"], ny=cfg["n"], nz=cfg["n"],
        angles_per_octant=cfg["angles_per_octant"],
        num_groups=cfg["num_groups"],
        max_twist=0.001,
        num_inners=2,
        num_outers=1,
    )
    return Study.grid(
        base, name="backend-bench", order=cfg["orders"], engine=cfg["engines"]
    )


def _timed_run(backend):
    t0 = time.perf_counter()
    result = run_study(_bench_study(), backend=backend, jobs=STUDY_BENCH["jobs"])
    return result, time.perf_counter() - t0


@pytest.mark.parametrize("backend", BACKENDS)
def test_study_backend(benchmark, backend):
    """Time the full grid through one backend; record the wall clock."""
    result, wall = benchmark.pedantic(_timed_run, args=(backend,), rounds=1, iterations=1)
    _backend_runs[backend] = {"wall_seconds": wall, "result": result}
    assert len(result) == len(_bench_study())
    assert result.new_run_count == len(result)


def test_backends_equivalent():
    """Every backend produces the identical flux per grid point."""
    for backend in BACKENDS:
        if backend not in _backend_runs:
            result, wall = _timed_run(backend)
            _backend_runs[backend] = {"wall_seconds": wall, "result": result}
    reference = _backend_runs["serial"]["result"]
    for backend in ("thread", "process"):
        other = _backend_runs[backend]["result"]
        for a, b in zip(reference, other):
            assert a.axes == b.axes
            np.testing.assert_array_equal(
                a.result.scalar_flux, b.result.scalar_flux,
                err_msg=f"{backend} flux differs from serial at {a.axes}",
            )


def test_print_backend_comparison():
    """Print the backend comparison and write it to ``BENCH_study.json``."""
    cfg = STUDY_BENCH
    for backend in BACKENDS:
        if backend not in _backend_runs:
            result, wall = _timed_run(backend)
            _backend_runs[backend] = {"wall_seconds": wall, "result": result}
    serial = _backend_runs["serial"]["wall_seconds"]
    runs = len(_bench_study())
    print(f"\nstudy backend comparison ({runs} runs: orders {cfg['orders']} x "
          f"engines {cfg['engines']}, {cfg['n']}^3 cells, "
          f"{8 * cfg['angles_per_octant']} angles, {cfg['num_groups']} groups, "
          f"jobs={cfg['jobs']}):")
    for backend in BACKENDS:
        wall = _backend_runs[backend]["wall_seconds"]
        print(f"  {backend:8s}: {wall:.3f} s  ({serial / wall:.2f}x vs serial)")

    record = {
        "benchmark": "study-backend comparison (bench_study_backends.py)",
        "workload": {
            "runs": runs,
            "grid": f"{cfg['n']}^3",
            "orders": list(cfg["orders"]),
            "engines": list(cfg["engines"]),
            "angles": 8 * cfg["angles_per_octant"],
            "groups": cfg["num_groups"],
            "jobs": cfg["jobs"],
        },
        "backends": {
            backend: {"wall_seconds": _backend_runs[backend]["wall_seconds"]}
            for backend in BACKENDS
        },
        "speedup_vs_serial": {
            backend: serial / _backend_runs[backend]["wall_seconds"] for backend in BACKENDS
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    with open(STUDY_BENCH_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"  wrote {STUDY_BENCH_JSON}")
    # No ordering assertion between backends: wall-clock comparisons are noisy
    # on shared CI boxes (and the fork tax dominates tiny grids); the JSON is
    # the signal.
    assert all(entry["wall_seconds"] > 0 for entry in _backend_runs.values())
