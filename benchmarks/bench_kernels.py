"""Kernel-level ablation benchmarks (thin wrappers over ``repro.bench``).

The measurement bodies that used to live here are now *registered benchmark
cases* (:mod:`repro.bench.cases`): ``engine-sweep`` times repeated transport
sweeps per registered engine (the factor-cache reuse the ``prefactorized``
engine wins on), ``assembly-kernel`` and ``solve-kernel`` isolate the two
kernels Table II is built from, and ``matrix-setup`` the Table I
precomputation.  Run the full suite with ``unsnap bench`` (or ``--smoke``);
these pytest wrappers execute the same cases through the same runner so
``pytest benchmarks/`` still collects, prints and sanity-checks them.

The workload honours the ``UNSNAP_BENCH_*`` environment variables exactly as
before; ``UNSNAP_BENCH_JSON`` keeps writing a machine-readable record, now in
the ``unsnap-bench-v1`` schema.
"""

import os

import pytest

from repro.bench import BenchWorkload, run_benchmarks
from repro.bench.suite import run_case
from repro.bench.registry import get_benchmark
from repro.analysis.reporting import format_bench_report
from repro.perfmodel.roofline import arithmetic_intensity
from repro.perfmodel.workload import SweepWorkload

#: Where the engine comparison is written when requested (legacy knob).
ENGINE_BENCH_JSON = os.environ.get("UNSNAP_BENCH_JSON")


@pytest.fixture(scope="module")
def workload() -> BenchWorkload:
    """One measurement per case keeps ``pytest benchmarks/`` quick."""
    return BenchWorkload.from_env().with_(repeats=1, warmup=0)


def test_engine_sweep_case(workload):
    """Every registered engine is timed and does the same amount of work."""
    case = run_case(get_benchmark("engine-sweep"), workload)
    names = [sample.name for sample in case.samples]
    for engine in ("reference", "vectorized", "prefactorized"):
        assert engine in names
    solved = {s.name: s.metrics["systems_solved"] for s in case.samples}
    assert len(set(solved.values())) == 1, solved
    # The factor cache is cold for the first sweep only.
    pre = case.sample("prefactorized").metrics
    assert pre["factor_cache_misses"] > 0
    assert pre["factor_cache_hits"] == (workload.sweeps - 1) * pre["factor_cache_misses"]


def test_assembly_and_solve_kernels(workload):
    """The Table II kernels report positive timings for every order/solver."""
    for name in ("assembly-kernel", "solve-kernel"):
        case = run_case(get_benchmark(name), workload)
        assert case.samples, name
        assert all(s.best >= 0.0 for s in case.samples)
    solve = run_case(get_benchmark("solve-kernel"), workload)
    assert all(s.metrics["residual"] < 1e-8 for s in solve.samples)


@pytest.mark.parametrize("order", (1, 2, 3))
def test_print_arithmetic_intensity(order):
    """Print the modelled arithmetic intensity per order (paper: ~0.25 linear)."""
    kernel = SweepWorkload(order=order, num_groups=64)
    ai = arithmetic_intensity(kernel)
    print(f"\norder {order}: modelled arithmetic intensity = {ai:.2f} FLOP/byte "
          f"({kernel.total_flops():.0f} FLOPs, {kernel.total_bytes():.0f} bytes per item)")
    assert ai > 0


def test_print_kernel_report(workload):
    """Run the kernel-tagged cases through the suite runner and print them."""
    report = run_benchmarks(["kernel"], workload=workload)
    print()
    print(format_bench_report(report))
    if ENGINE_BENCH_JSON:
        print(f"wrote {report.save(ENGINE_BENCH_JSON)}")
    assert {case.name for case in report.cases} >= {
        "engine-sweep", "assembly-kernel", "solve-kernel", "matrix-setup"
    }
