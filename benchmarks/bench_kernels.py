"""Kernel-level ablation benchmarks.

These benchmarks isolate the two kernels Table II is built from -- the local
assembly and the local dense solve -- plus the sweep-schedule construction
and the roofline characterisation, so the cost model used by the Figure 3/4
reproduction can be sanity-checked against measured Python kernels.

The sweep *engine* is the newest benchmark axis: ``test_sweep_engine`` times
a short run of repeated transport sweeps per registered engine on the same
problem, so the per-element ``reference`` loop can be compared directly
against the per-bucket ``vectorized`` batch path and the factor-caching
``prefactorized`` engine (whose win is exactly the reuse across sweeps; see
``repro.engines``).  ``test_print_engine_speedup`` prints the comparison and
writes it to ``BENCH_engines.json`` so CI can archive the perf trajectory
per commit; the workload is shrinkable through ``UNSNAP_BENCH_*``
environment variables for smoke runs.
"""

import json
import os
import platform
import time

import numpy as np
import pytest

from repro.angular.quadrature import snap_dummy_quadrature
from repro.core.assembly import ElementMatrices
from repro.core.sweep import SweepExecutor
from repro.fem.element import HexElementFactors
from repro.fem.reference import ReferenceElement
from repro.materials.library import snap_option1_library
from repro.mesh.builder import StructuredGridSpec, build_snap_mesh
from repro.perfmodel.roofline import arithmetic_intensity
from repro.perfmodel.workload import SweepWorkload
from repro.solvers.registry import get_solver
from repro.sweepsched.graph import classify_faces
from repro.sweepsched.schedule import build_sweep_schedule

ORDERS = (1, 2, 3)
ENGINES = ("reference", "vectorized", "prefactorized")

#: The engine-comparison workload: 8^3 twisted cells, 2 angles/octant (16
#: angles), 8 groups, 3 sweeps -- each sweep is 8192 element solves (65536
#: systems), and the repeated sweeps expose the prefactorized engine's
#: factor reuse (inner iterations in a real solve).  The ``UNSNAP_BENCH_*``
#: environment variables shrink the workload for CI smoke runs.
ENGINE_BENCH = dict(
    n=int(os.environ.get("UNSNAP_BENCH_N", "8")),
    angles_per_octant=int(os.environ.get("UNSNAP_BENCH_NANG", "2")),
    num_groups=int(os.environ.get("UNSNAP_BENCH_GROUPS", "8")),
    order=1,
    sweeps=int(os.environ.get("UNSNAP_BENCH_SWEEPS", "3")),
)

#: Where ``test_print_engine_speedup`` writes the machine-readable record.
ENGINE_BENCH_JSON = os.environ.get("UNSNAP_BENCH_JSON", "BENCH_engines.json")

_engine_seconds = {}


def _timed_sweeps(executor, source):
    """Run the workload's repeated sweeps; return (last result, seconds)."""
    t0 = time.perf_counter()
    for _ in range(ENGINE_BENCH["sweeps"]):
        result = executor.sweep(source)
    return result, time.perf_counter() - t0


def _engine_executor(engine, solver="ge"):
    cfg = ENGINE_BENCH
    mesh = build_snap_mesh(
        StructuredGridSpec(cfg["n"], cfg["n"], cfg["n"]), max_twist=0.001
    )
    ref = ReferenceElement(cfg["order"])
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    matrices = ElementMatrices.build(factors, ref)
    quadrature = snap_dummy_quadrature(cfg["angles_per_octant"])
    schedule = build_sweep_schedule(mesh, factors, quadrature)
    materials = snap_option1_library(cfg["num_groups"]).for_cells(mesh.num_cells)
    executor = SweepExecutor(
        mesh=mesh,
        factors=factors,
        ref=ref,
        matrices=matrices,
        schedule=schedule,
        quadrature=quadrature,
        materials=materials,
        solver=solver,
        engine=engine,
    )
    source = np.ones((mesh.num_cells, cfg["num_groups"], ref.num_nodes))
    return executor, source


def _local_systems(order, num_groups, seed=0):
    """Assemble a realistic batch of local systems for one element."""
    rng = np.random.default_rng(seed)
    mesh = build_snap_mesh(StructuredGridSpec(2, 2, 2), max_twist=0.001)
    ref = ReferenceElement(order)
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    matrices = ElementMatrices.build(factors, ref)
    direction = np.array([0.5, 0.6, 0.62449979984])
    cls = classify_faces(factors, direction)
    sigma_t = 1.0 + 0.01 * np.arange(num_groups)
    source = rng.uniform(0.5, 1.5, size=(num_groups, ref.num_nodes))
    a, b = matrices.assemble_systems(0, direction, cls.orientation[0], sigma_t, source, {})
    return matrices, cls, direction, sigma_t, source, a, b


@pytest.mark.parametrize("order", ORDERS)
def test_assembly_kernel(benchmark, order):
    """Time the per-element, per-angle assembly of all group systems."""
    matrices, cls, direction, sigma_t, source, _a, _b = _local_systems(order, num_groups=8)
    result = benchmark(
        matrices.assemble_systems, 0, direction, cls.orientation[0], sigma_t, source, {}
    )
    assert result[0].shape == (8, matrices.num_nodes, matrices.num_nodes)


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("solver", ("ge", "lapack"))
def test_solve_kernel(benchmark, order, solver):
    """Time the batched local solve for each solver and order (Table II kernels)."""
    _m, _c, _d, _s, _src, a, b = _local_systems(order, num_groups=8)
    local = get_solver(solver)
    x = benchmark(local.solve_batched, a, b)
    assert np.allclose(np.einsum("gij,gj->gi", a, x), b, atol=1e-8)


@pytest.mark.parametrize("order", ORDERS)
def test_print_arithmetic_intensity(order):
    """Print the modelled arithmetic intensity per order (paper: ~0.25 for linear)."""
    workload = SweepWorkload(order=order, num_groups=64)
    ai = arithmetic_intensity(workload)
    print(f"\norder {order}: modelled arithmetic intensity = {ai:.2f} FLOP/byte "
          f"({workload.total_flops():.0f} FLOPs, {workload.total_bytes():.0f} bytes per item)")
    assert ai > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_sweep_engine(benchmark, engine):
    """Time repeated full sweeps (all octants, angles, groups) per engine."""
    cfg = ENGINE_BENCH
    executor, source = _engine_executor(engine)
    result, wall = benchmark.pedantic(
        _timed_sweeps, args=(executor, source), rounds=1, iterations=1
    )
    _engine_seconds[engine] = {
        "kernel_seconds": result.timings.total_seconds,
        "wall_seconds": wall,
    }
    assert result.scalar_flux.shape == (
        executor.mesh.num_cells, cfg["num_groups"], executor.num_nodes
    )
    angles = 8 * cfg["angles_per_octant"]
    assert result.timings.systems_solved == executor.mesh.num_cells * angles * cfg["num_groups"]


def test_print_engine_speedup():
    """Print the engine comparison and write it to ``BENCH_engines.json``."""
    cfg = ENGINE_BENCH
    for engine in ENGINES:
        if engine not in _engine_seconds:
            executor, source = _engine_executor(engine)
            result, wall = _timed_sweeps(executor, source)
            _engine_seconds[engine] = {
                "kernel_seconds": result.timings.total_seconds,
                "wall_seconds": wall,
            }
    ref = _engine_seconds["reference"]["wall_seconds"]
    print(f"\nsweep engine comparison ({cfg['n']}^3 cells, "
          f"{8 * cfg['angles_per_octant']} angles, {cfg['num_groups']} groups, "
          f"{cfg['sweeps']} sweeps):")
    for engine in ENGINES:
        wall = _engine_seconds[engine]["wall_seconds"]
        print(f"  {engine:13s}: {wall:.3f} s  ({ref / wall:.1f}x vs reference)")
    vec = _engine_seconds["vectorized"]["wall_seconds"]
    pre = _engine_seconds["prefactorized"]["wall_seconds"]
    print(f"  prefactorized vs vectorized: {vec / pre:.2f}x")

    record = {
        "benchmark": "sweep-engine comparison (bench_kernels.py)",
        "workload": {
            "cells": cfg["n"] ** 3,
            "grid": f"{cfg['n']}^3",
            "angles": 8 * cfg["angles_per_octant"],
            "groups": cfg["num_groups"],
            "order": cfg["order"],
            "sweeps": cfg["sweeps"],
        },
        "engines": _engine_seconds,
        "speedup_vs_reference": {
            engine: ref / _engine_seconds[engine]["wall_seconds"] for engine in ENGINES
        },
        "prefactorized_vs_vectorized": vec / pre,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    with open(ENGINE_BENCH_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"  wrote {ENGINE_BENCH_JSON}")
    # No ordering assertion between engines: single-round wall-clock
    # comparisons are noisy on shared CI boxes; the JSON is the signal.
    assert all(entry["wall_seconds"] > 0 for entry in _engine_seconds.values())


def test_schedule_construction(benchmark):
    """Time the per-angle schedule construction for a 8^3 mesh, 4 angles/octant."""
    mesh = build_snap_mesh(StructuredGridSpec(8, 8, 8), max_twist=0.001)
    ref = ReferenceElement(1)
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    quad = snap_dummy_quadrature(4)
    schedule = benchmark.pedantic(build_sweep_schedule, args=(mesh, factors, quad),
                                  rounds=1, iterations=1)
    assert schedule.num_angles == 32
    assert schedule.num_unique_schedules() <= 8
