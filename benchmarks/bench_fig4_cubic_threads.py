"""Figure 4: thread scaling of the parallel sweep, cubic elements.

Same methodology as the Figure 3 benchmark (node performance model with the
paper's 16^3 / 36 angles / 64 groups problem, order 3), checking the cubic
findings of Section IV-A.2:

* the collapsed ``angle/element/group`` scheme remains the fastest at 56
  threads,
* the extra work of cubic elements raises the absolute time by orders of
  magnitude relative to linear elements, and
* the ``angle/group/element`` layout is much less penalised than it is for
  linear elements (the 32 kB vs 64 B stride argument).

The measured cubic companion is the registered ``thread-scaling-cubic``
benchmark case (``unsnap bench --filter scaling``).
"""

import pytest

from repro.analysis.figures import figure3_series, figure4_series
from repro.analysis.reporting import format_scaling_series
from repro.bench import BenchWorkload
from repro.bench.registry import get_benchmark
from repro.bench.suite import run_case
from repro.config import ProblemSpec
from repro.perfmodel.schemes import paper_schemes
from repro.perfmodel.simulator import SweepPerformanceModel


@pytest.fixture(scope="module")
def fig4():
    return figure4_series()


@pytest.fixture(scope="module")
def fig3():
    return figure3_series()


def test_model_evaluation_cubic():
    spec = ProblemSpec.paper_figure3_4(order=3)
    model = SweepPerformanceModel(spec)
    scheme = paper_schemes()[1]
    point = model.sweep_time(scheme, 56)
    assert point.seconds > 0


def test_print_figure4_series(fig4):
    print()
    print(
        format_scaling_series(
            fig4.thread_counts,
            fig4.series,
            title="Figure 4 (reproduced, model): assemble/solve time vs threads, cubic elements",
        )
    )
    print(f"fastest scheme at 56 threads: {fig4.fastest_at(56)}")


def test_figure4_shape_collapse_fastest(fig4):
    fastest = fig4.fastest_at(56)
    assert "*element*" in fastest and "*group*" in fastest


def test_figure4_shape_cubic_orders_of_magnitude_slower(fig3, fig4):
    best_linear = min(v[-1] for v in fig3.series.values())
    best_cubic = min(v[-1] for v in fig4.series.values())
    assert best_cubic / best_linear > 20.0


def test_figure4_shape_group_major_layout_competitive_for_cubic(fig3, fig4):
    def layout_gap(series):
        elem = min(v[-1] for k, v in series.items()
                   if not k.startswith("angle/*group*") and not k.startswith("angle/group"))
        group = min(v[-1] for k, v in series.items()
                    if k.startswith("angle/*group*") or k.startswith("angle/group"))
        return group / elem

    # The relative penalty of the angle/group/element layout shrinks (or at
    # worst stays equal) when going from linear to cubic elements.
    assert layout_gap(fig4.series) <= layout_gap(fig3.series) + 1e-9


def test_figure4_shape_all_schemes_scale(fig4):
    for label, values in fig4.series.items():
        assert values[0] > values[-1], f"{label} does not scale"


def test_measured_cubic_scaling_case():
    """The registered measured cubic companion stays tiny but runs for real."""
    workload = BenchWorkload.from_env(smoke=True).with_(repeats=1, warmup=0)
    case = run_case(get_benchmark("thread-scaling-cubic"), workload)
    assert case.samples
    fluxes = {f"{s.metrics['mean_flux']:.17e}" for s in case.samples}
    assert len(fluxes) == 1
