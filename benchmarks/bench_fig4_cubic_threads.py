"""Figure 4: thread scaling of the parallel sweep, cubic elements.

Same methodology as the Figure 3 benchmark (node performance model with the
paper's 16^3 / 36 angles / 64 groups problem, order 3), checking the cubic
findings of Section IV-A.2:

* the collapsed ``angle/element/group`` scheme remains the fastest at 56
  threads,
* the extra work of cubic elements raises the absolute time by orders of
  magnitude relative to linear elements, and
* the ``angle/group/element`` layout is much less penalised than it is for
  linear elements (the 32 kB vs 64 B stride argument).

Like the Figure 3 benchmark, a measured companion ensemble executes a cubic
thread-count x engine study through ``repro.run_study`` and consumes the
``StudyResult`` directly.
"""

import os

import pytest

from repro.analysis.figures import (
    figure3_series,
    figure4_series,
    measured_scaling_series,
    measured_thread_scaling_study,
)
from repro.analysis.reporting import format_scaling_series
from repro.config import ProblemSpec
from repro.perfmodel.schemes import paper_schemes
from repro.perfmodel.simulator import SweepPerformanceModel

#: Cubic measured workload: order 3 is the expensive axis, so the grid is
#: tiny by default (2^3 cells) and shrinkable further via the env knobs.
MEASURED_CUBIC = dict(
    n=int(os.environ.get("UNSNAP_BENCH_CUBIC_N", "2")),
    angles_per_octant=int(os.environ.get("UNSNAP_BENCH_NANG", "1")),
    num_groups=int(os.environ.get("UNSNAP_BENCH_GROUPS", "2")),
    thread_counts=(1, 2),
)


@pytest.fixture(scope="module")
def fig4():
    return figure4_series()


@pytest.fixture(scope="module")
def fig3():
    return figure3_series()


def test_benchmark_model_evaluation_cubic(benchmark):
    spec = ProblemSpec.paper_figure3_4(order=3)
    model = SweepPerformanceModel(spec)
    scheme = paper_schemes()[1]
    point = benchmark(model.sweep_time, scheme, 56)
    assert point.seconds > 0


def test_print_figure4_series(fig4):
    print()
    print(
        format_scaling_series(
            fig4.thread_counts,
            fig4.series,
            title="Figure 4 (reproduced, model): assemble/solve time vs threads, cubic elements",
        )
    )
    print(f"fastest scheme at 56 threads: {fig4.fastest_at(56)}")


def test_figure4_shape_collapse_fastest(fig4):
    fastest = fig4.fastest_at(56)
    assert "*element*" in fastest and "*group*" in fastest


def test_figure4_shape_cubic_orders_of_magnitude_slower(fig3, fig4):
    best_linear = min(v[-1] for v in fig3.series.values())
    best_cubic = min(v[-1] for v in fig4.series.values())
    assert best_cubic / best_linear > 20.0


def test_figure4_shape_group_major_layout_competitive_for_cubic(fig3, fig4):
    def layout_gap(series):
        elem = min(v[-1] for k, v in series.items()
                   if not k.startswith("angle/*group*") and not k.startswith("angle/group"))
        group = min(v[-1] for k, v in series.items()
                    if k.startswith("angle/*group*") or k.startswith("angle/group"))
        return group / elem

    # The relative penalty of the angle/group/element layout shrinks (or at
    # worst stays equal) when going from linear to cubic elements.
    assert layout_gap(fig4.series) <= layout_gap(fig3.series) + 1e-9


def test_figure4_shape_all_schemes_scale(fig4):
    for label, values in fig4.series.items():
        assert values[0] > values[-1], f"{label} does not scale"


def test_measured_thread_scaling_study_cubic():
    """Run the measured cubic ensemble through run_study and print its series."""
    cfg = MEASURED_CUBIC
    base = ProblemSpec(
        nx=cfg["n"], ny=cfg["n"], nz=cfg["n"],
        order=3,
        angles_per_octant=cfg["angles_per_octant"],
        num_groups=cfg["num_groups"],
        max_twist=0.001,
        num_inners=2,
        num_outers=1,
    )
    result = measured_thread_scaling_study(
        base, thread_counts=cfg["thread_counts"], engines=("prefactorized",)
    )
    assert len(result) == len(cfg["thread_counts"])
    series = measured_scaling_series(result)
    print()
    print(
        format_scaling_series(
            series.thread_counts,
            series.series,
            title=f"Figure 4 companion (measured study): octant-parallel solve seconds, "
            f"{cfg['n']}^3 cubic elements",
        )
    )
    assert series.order == 3
    assert series.thread_counts == sorted(cfg["thread_counts"])
    # Octant parallelism is bit-for-bit deterministic, so every thread count
    # reproduces the same mean flux.
    assert len({f"{v:.17e}" for v in result.values("mean_flux")}) == 1
