"""Table II: assemble/solve time for the hand-written GE and LAPACK solvers.

The paper runs 32^3 cells / 10 angles / 16 groups flat-MPI on a Skylake node
and reports, per element order 1-4, the assemble/solve time and the fraction
of it spent in the solve, for the hand-written Gaussian elimination and for
MKL ``dgesv``.  Here the same sweep over orders and solvers runs on a
scaled-down problem; the benchmark prints the reproduced table and checks the
qualitative findings that survive the Python substitution:

* the cost grows steeply with element order, and
* the fraction of time spent in the solve grows with element order (34% ->
  ~74-87% in the paper).

The GE-beats-MKL result for small matrices is a C/Fortran call-overhead
effect and does not transfer to CPython (the interpreter overhead sits on the
GE side here); EXPERIMENTS.md discusses this in detail.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.runner import run

ORDERS = (1, 2, 3)
SOLVERS = ("ge", "lapack")

_results_cache = {}


def _run(spec):
    key = (spec.order, spec.solver)
    if key not in _results_cache:
        _results_cache[key] = run(spec)
    return _results_cache[key]


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("solver", SOLVERS)
def test_assemble_solve_time(benchmark, table2_base_spec, order, solver):
    """Benchmark one full solve per (order, solver) cell of Table II."""
    spec = table2_base_spec.with_(order=order, solver=solver)
    result = benchmark.pedantic(run, args=(spec,), rounds=1, iterations=1)
    _results_cache[(order, solver)] = result
    assert result.timings.total_seconds > 0


def test_print_table2(table2_base_spec):
    """Print the reproduced Table II and check the qualitative shape."""
    rows = []
    solve_fraction = {}
    total_time = {}
    for order in ORDERS:
        for solver in SOLVERS:
            result = _run(table2_base_spec.with_(order=order, solver=solver))
            t = result.timings
            rows.append(
                (order, solver, round(t.total_seconds, 3), f"{100 * t.solve_fraction:.0f}%")
            )
            solve_fraction[(order, solver)] = t.solve_fraction
            total_time[(order, solver)] = t.total_seconds
    print()
    print(
        format_table(
            ("order", "solver", "assemble/solve (s)", "% in solve"),
            rows,
            title="Table II (reproduced, scaled down): assemble/solve time per order and solver",
        )
    )
    # Paper shape 1: higher orders are much more expensive (orders of magnitude
    # in the paper; at least a strong monotone increase here).
    for solver in SOLVERS:
        assert total_time[(3, solver)] > total_time[(1, solver)]
    # Paper shape 2: the solve fraction grows with order for the LAPACK path
    # (34% -> 74% in the paper; the same monotone trend must hold here).
    assert solve_fraction[(3, "lapack")] > solve_fraction[(1, "lapack")]
