"""Table II: assemble/solve time for the hand-written GE and LAPACK solvers.

The paper runs 32^3 cells / 10 angles / 16 groups flat-MPI on a Skylake node
and reports, per element order 1-4, the assemble/solve time and the fraction
of it spent in the solve, for the hand-written Gaussian elimination and for
MKL ``dgesv``.  The order x solver grid is now the registered
``table2-solvers`` benchmark case (a declarative :class:`repro.Study`
through ``repro.run_study``); this wrapper runs it through the suite runner,
prints the reproduced table and checks the qualitative findings that survive
the Python substitution:

* the cost grows steeply with element order, and
* the fraction of time spent in the solve grows with element order (34% ->
  ~74-87% in the paper, on the LAPACK path here).

The GE-beats-MKL result for small matrices is a C/Fortran call-overhead
effect and does not transfer to CPython; EXPERIMENTS.md discusses this.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.bench import BenchWorkload
from repro.bench.registry import get_benchmark
from repro.bench.suite import run_case


@pytest.fixture(scope="module")
def case_report():
    workload = BenchWorkload.from_env().with_(repeats=1, warmup=0)
    return run_case(get_benchmark("table2-solvers"), workload)


def test_print_table2(case_report):
    """Print the reproduced Table II rows from the registered case."""
    rows = [
        (
            sample.name,
            round(sample.best, 3),
            f"{100 * sample.metrics['solve_fraction']:.0f}%",
            sample.metrics["systems_solved"],
        )
        for sample in case_report.samples
    ]
    print()
    print(
        format_table(
            ("order x solver", "assemble/solve (s)", "% in solve", "systems"),
            rows,
            title="Table II (reproduced, scaled down): assemble/solve time per order and solver",
        )
    )
    assert len(rows) >= 4


def test_cost_grows_with_order(case_report):
    """Paper shape 1: higher orders are much more expensive."""
    orders = sorted(
        {int(s.name.split("-")[0].removeprefix("order")) for s in case_report.samples}
    )
    for solver in ("ge", "lapack"):
        low = case_report.sample(f"order{orders[0]}-{solver}").best
        high = case_report.sample(f"order{orders[-1]}-{solver}").best
        assert high > low


def test_solve_fraction_grows_with_order(case_report):
    """Paper shape 2: the solve fraction grows with order (LAPACK path)."""
    orders = sorted(
        {int(s.name.split("-")[0].removeprefix("order")) for s in case_report.samples}
    )
    low = case_report.sample(f"order{orders[0]}-lapack").metrics["solve_fraction"]
    high = case_report.sample(f"order{orders[-1]}-lapack").metrics["solve_fraction"]
    assert high > low
