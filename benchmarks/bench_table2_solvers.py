"""Table II: assemble/solve time for the hand-written GE and LAPACK solvers.

The paper runs 32^3 cells / 10 angles / 16 groups flat-MPI on a Skylake node
and reports, per element order 1-4, the assemble/solve time and the fraction
of it spent in the solve, for the hand-written Gaussian elimination and for
MKL ``dgesv``.  Here the same ensemble is a declarative order x solver grid
(:class:`repro.Study`) executed through ``repro.run_study`` on a scaled-down
problem; the benchmark prints the reproduced table from the study's pivot
helpers and checks the qualitative findings that survive the Python
substitution:

* the cost grows steeply with element order, and
* the fraction of time spent in the solve grows with element order (34% ->
  ~74-87% in the paper).

The GE-beats-MKL result for small matrices is a C/Fortran call-overhead
effect and does not transfer to CPython (the interpreter overhead sits on the
GE side here); EXPERIMENTS.md discusses this in detail.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.campaign import Study, StudyResult, StudyRun, run_study

ORDERS = (1, 2, 3)
SOLVERS = ("ge", "lapack")

_study_results = {}


def _run_cell(base_spec, order, solver):
    """Execute one (order, solver) grid cell as a single-point study."""
    study = Study.grid(base_spec, name="table2-cell", order=[order], solver=[solver])
    return run_study(study, backend="serial")


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("solver", SOLVERS)
def test_assemble_solve_time(benchmark, table2_base_spec, order, solver):
    """Benchmark one full solve per (order, solver) cell of Table II."""
    result = benchmark.pedantic(
        _run_cell, args=(table2_base_spec, order, solver), rounds=1, iterations=1
    )
    _study_results[(order, solver)] = result[0]
    assert len(result) == 1 and result.new_run_count == 1
    assert result[0].result.timings.total_seconds > 0


def test_print_table2(table2_base_spec):
    """Print the reproduced Table II from the merged study and check its shape."""
    for order in ORDERS:
        for solver in SOLVERS:
            if (order, solver) not in _study_results:
                _study_results[(order, solver)] = _run_cell(table2_base_spec, order, solver)[0]
    # Merge the per-cell runs into one StudyResult covering the full grid, as
    # a direct `run_study(Study.grid(base, order=ORDERS, solver=SOLVERS))`
    # would produce, then consume it through the tidy-record/pivot API.
    grid = Study.grid(table2_base_spec, name="table2", order=ORDERS, solver=SOLVERS)
    by_axes = {(r.axes["order"], r.axes["solver"]): r.result for r in _study_results.values()}
    merged = StudyResult(
        study=grid,
        runs=tuple(
            StudyRun(
                index=p.index, axes=p.axes, spec=p.spec, run_options=p.run_options,
                result=by_axes[(p.axes["order"], p.axes["solver"])],
            )
            for p in grid.runs()
        ),
    )

    seconds = merged.pivot("order", "solver", "assembly_seconds")
    fractions = merged.pivot("order", "solver", "solve_fraction")
    rows = []
    for record in merged.records():
        t = record["assembly_seconds"] + record["solve_seconds"]
        rows.append(
            (record["order"], record["solver"], round(t, 3),
             f"{100 * record['solve_fraction']:.0f}%")
        )
    print()
    print(
        format_table(
            ("order", "solver", "assemble/solve (s)", "% in solve"),
            rows,
            title="Table II (reproduced, scaled down): assemble/solve time per order and solver",
        )
    )
    total = {
        (record["order"], record["solver"]): record["assembly_seconds"] + record["solve_seconds"]
        for record in merged.records()
    }
    # Paper shape 1: higher orders are much more expensive (orders of magnitude
    # in the paper; at least a strong monotone increase here).
    for solver in SOLVERS:
        assert total[(3, solver)] > total[(1, solver)]
    # Paper shape 2: the solve fraction grows with order for the LAPACK path
    # (34% -> 74% in the paper; the same monotone trend must hold here).
    assert fractions.at(3, "lapack") > fractions.at(1, "lapack")
    assert seconds.rows == ORDERS and seconds.cols == SOLVERS
