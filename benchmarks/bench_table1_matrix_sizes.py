"""Table I: size of the local matrix for different finite element orders.

The table itself is analytic (``(p+1)^3`` and the FP64 footprint); the
benchmark times the construction of the corresponding reference elements and
local matrices, which is the setup cost the table implies, and prints the
table rows exactly as the paper reports them.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.tables import table1_matrix_sizes
from repro.fem.element import HexElementFactors
from repro.fem.reference import ReferenceElement
from repro.core.assembly import ElementMatrices
from repro.mesh.builder import StructuredGridSpec, build_snap_mesh

PAPER_TABLE1 = {1: (8, 0.5), 2: (27, 5.7), 3: (64, 32.0), 4: (125, 122.1), 5: (216, 364.5)}


def test_print_table1():
    rows = table1_matrix_sizes()
    print()
    print(
        format_table(
            ("order", "matrix size", "FP64 footprint (kB)"),
            [r.as_tuple() for r in rows],
            title="Table I (reproduced): size of local matrix per finite element order",
        )
    )
    for row in rows:
        size, kb = PAPER_TABLE1[row.order]
        assert row.matrix_size == size
        assert row.footprint_kb == pytest.approx(kb, abs=0.05)


@pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
def test_reference_element_setup(benchmark, order):
    """Time to tabulate the reference element of each order of Table I."""
    ref = benchmark(ReferenceElement, order)
    assert ref.num_nodes == PAPER_TABLE1[order][0]


@pytest.mark.parametrize("order", [1, 2, 3])
def test_local_matrix_precomputation(benchmark, order):
    """Time to precompute the per-element matrices for a small mesh."""
    mesh = build_snap_mesh(StructuredGridSpec(3, 3, 3), max_twist=0.001)
    ref = ReferenceElement(order)
    factors = HexElementFactors.build(mesh.cell_vertices(), ref)
    matrices = benchmark(ElementMatrices.build, factors, ref)
    assert matrices.mass.shape == (27, ref.num_nodes, ref.num_nodes)
