"""Table I: size of the local matrix for different finite element orders.

The analytic table rows stay asserted here against the paper's numbers; the
setup-cost measurement the table implies (reference-element tabulation plus
local-matrix precomputation) is the registered ``matrix-setup`` benchmark
case run through the ``repro.bench`` suite runner.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.tables import table1_matrix_sizes
from repro.bench import BenchWorkload
from repro.bench.registry import get_benchmark
from repro.bench.suite import run_case

PAPER_TABLE1 = {1: (8, 0.5), 2: (27, 5.7), 3: (64, 32.0), 4: (125, 122.1), 5: (216, 364.5)}


def test_print_table1():
    rows = table1_matrix_sizes()
    print()
    print(
        format_table(
            ("order", "matrix size", "FP64 footprint (kB)"),
            [r.as_tuple() for r in rows],
            title="Table I (reproduced): size of local matrix per finite element order",
        )
    )
    for row in rows:
        size, kb = PAPER_TABLE1[row.order]
        assert row.matrix_size == size
        assert row.footprint_kb == pytest.approx(kb, abs=0.05)


def test_matrix_setup_case():
    """The registered setup-cost case covers every benchmarked order."""
    workload = BenchWorkload.from_env().with_(repeats=1, warmup=0)
    case = run_case(get_benchmark("matrix-setup"), workload)
    by_order = {s.name: s.metrics["matrix_size"] for s in case.samples}
    for name, matrix_size in by_order.items():
        order = int(name.rsplit("-", 1)[1])
        assert matrix_size == PAPER_TABLE1[order][0]
    assert all(s.best > 0 for s in case.samples)
