"""Section II-C trade-offs: finite difference (SNAP) vs finite element (UnSNAP).

Not a numbered table in the paper, but Section II-C makes three quantitative
claims that this benchmark reproduces:

* the FEM does far more work per cell/angle/group than the single
  multiply-add diamond-difference relations (timed by the registered
  ``fd-vs-fem`` benchmark case);
* the FEM angular flux costs ``(p+1)^3`` times the FD storage (8x for linear
  elements); and
* both methods solve the same physics -- their cell-averaged fluxes agree.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.tables import fd_vs_fem_comparison
from repro.bench import BenchWorkload
from repro.bench.registry import get_benchmark
from repro.bench.suite import run_case
from repro.config import ProblemSpec


def test_fd_vs_fem_case():
    """The registered case times both discretisations on the same physics."""
    workload = BenchWorkload.from_env().with_(repeats=1, warmup=0)
    case = run_case(get_benchmark("fd-vs-fem"), workload)
    fd, fem = case.sample("fd"), case.sample("fem")
    assert fd.best > 0 and fem.best > 0
    # Same physics: the mean cell-average fluxes land close together even
    # after only two inners.
    assert fem.metrics["mean_flux"] == pytest.approx(fd.metrics["mean_flux"], rel=0.1)
    print(f"\nfd {fd.best:.3f} s vs fem {fem.best:.3f} s "
          f"(work ratio {fem.metrics['work_ratio']:.1f}x)")


def test_print_fd_vs_fem_tradeoffs():
    report = fd_vs_fem_comparison(n=5, num_groups=2, angles_per_octant=2, num_inners=25)
    rows = [(k, v) for k, v in report.items()]
    print()
    print(format_table(("quantity", "value"), rows, title="Section II-C trade-offs (reproduced)"))
    assert report["fem_memory_ratio"] == 8.0
    assert report["fem_to_fd_work_ratio"] > 10.0
    assert report["mean_relative_flux_difference"] < 0.05


@pytest.mark.parametrize("order", [1, 2, 3])
def test_memory_ratio_grows_with_order(order):
    spec = ProblemSpec(nx=2, ny=2, nz=2, order=order, angles_per_octant=1, num_groups=1)
    assert spec.nodes_per_element == (order + 1) ** 3
    assert spec.angular_flux_bytes() == 8 * spec.num_cells * spec.num_angles * (order + 1) ** 3
