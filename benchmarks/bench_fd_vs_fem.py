"""Section II-C trade-offs: finite difference (SNAP) vs finite element (UnSNAP).

Not a numbered table in the paper, but Section II-C makes three quantitative
claims that this benchmark reproduces and times:

* the FEM does far more work per cell/angle/group than the single
  multiply-add diamond-difference relations;
* the FEM angular flux costs ``(p+1)^3`` times the FD storage (8x for linear
  elements); and
* both methods solve the same physics -- their cell-averaged fluxes agree.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.tables import fd_vs_fem_comparison
from repro.baseline.snap_fd import SnapDiamondDifferenceSolver
from repro.config import ProblemSpec
from repro.runner import run

N = 5
GROUPS = 2
ANGLES = 2


def test_benchmark_fd_sweep(benchmark):
    solver = SnapDiamondDifferenceSolver(
        N, N, N, num_groups=GROUPS, angles_per_octant=ANGLES, num_inners=2
    )
    result = benchmark.pedantic(solver.solve, rounds=1, iterations=1)
    assert result.scalar_flux.shape == (N, N, N, GROUPS)


def test_benchmark_fem_sweep(benchmark):
    spec = ProblemSpec(
        nx=N, ny=N, nz=N, order=1, angles_per_octant=ANGLES, num_groups=GROUPS,
        max_twist=0.0, num_inners=2, num_outers=1,
    )
    result = benchmark.pedantic(run, args=(spec,), rounds=1, iterations=1)
    assert result.scalar_flux.shape == (N**3, GROUPS, 8)


def test_print_fd_vs_fem_tradeoffs():
    report = fd_vs_fem_comparison(n=N, num_groups=GROUPS, angles_per_octant=ANGLES, num_inners=25)
    rows = [(k, v) for k, v in report.items()]
    print()
    print(format_table(("quantity", "value"), rows, title="Section II-C trade-offs (reproduced)"))
    assert report["fem_memory_ratio"] == 8.0
    assert report["fem_to_fd_work_ratio"] > 10.0
    assert report["mean_relative_flux_difference"] < 0.05


@pytest.mark.parametrize("order", [1, 2, 3])
def test_memory_ratio_grows_with_order(order):
    spec = ProblemSpec(nx=2, ny=2, nz=2, order=order, angles_per_octant=1, num_groups=1)
    assert spec.nodes_per_element == (order + 1) ** 3
    assert spec.angular_flux_bytes() == 8 * spec.num_cells * spec.num_angles * (order + 1) ** 3
