"""Figure 3: thread scaling of the parallel sweep, linear elements.

The figure's measurement (assemble/solve time vs OpenMP threads on a 56-core
Skylake node for six loop-ordering/layout/threading schemes) cannot be
repeated faithfully from CPython, so the series are produced by the node
performance model with the paper's exact problem (16^3 cells, 36 angles per
octant, 64 groups, twist 0.001, 5 inners) and machine (2x Xeon 8176).  The
benchmark times the model evaluation and prints the reproduced series, and
asserts the findings of Section IV-A.1:

* the ``angle/element/group`` data layout beats ``angle/group/element`` for
  linear elements,
* collapsing the element and group loops gives the fastest scheme on all 56
  cores, and
* every scheme scales (time decreases) from 1 to 56 threads.

A *measured* companion ensemble runs the same shape of grid for real:
``measured_thread_scaling_study`` executes a thread-count x engine study
through ``repro.run_study`` (octant-parallel sweeps) on a scaled-down linear
problem and the result is consumed as a ``StudyResult`` -- shrink it further
with the ``UNSNAP_BENCH_*`` environment variables.
"""

import os

import pytest

from repro.analysis.figures import (
    PAPER_THREAD_COUNTS,
    figure3_series,
    measured_scaling_series,
    measured_thread_scaling_study,
)
from repro.analysis.reporting import format_scaling_series
from repro.config import ProblemSpec
from repro.perfmodel.schemes import paper_schemes
from repro.perfmodel.simulator import SweepPerformanceModel

#: Scaled-down measured thread-scaling workload (Figure 3 is 16^3/36/64).
MEASURED = dict(
    n=int(os.environ.get("UNSNAP_BENCH_N", "4")),
    angles_per_octant=int(os.environ.get("UNSNAP_BENCH_NANG", "2")),
    num_groups=int(os.environ.get("UNSNAP_BENCH_GROUPS", "2")),
    thread_counts=(1, 2),
    engines=("vectorized", "prefactorized"),
)


def measured_base_spec(order: int) -> ProblemSpec:
    return ProblemSpec(
        nx=MEASURED["n"], ny=MEASURED["n"], nz=MEASURED["n"],
        order=order,
        angles_per_octant=MEASURED["angles_per_octant"],
        num_groups=MEASURED["num_groups"],
        max_twist=0.001,
        num_inners=2,
        num_outers=1,
    )


@pytest.fixture(scope="module")
def fig3():
    return figure3_series()


def test_benchmark_model_evaluation(benchmark):
    spec = ProblemSpec.paper_figure3_4(order=1)
    model = SweepPerformanceModel(spec)
    scheme = paper_schemes()[1]
    point = benchmark(model.sweep_time, scheme, 56)
    assert point.seconds > 0


def test_print_figure3_series(fig3):
    print()
    print(
        format_scaling_series(
            fig3.thread_counts,
            fig3.series,
            title="Figure 3 (reproduced, model): assemble/solve time vs threads, linear elements",
        )
    )
    print(f"fastest scheme at 56 threads: {fig3.fastest_at(56)}")


def test_figure3_shape_element_major_layout_wins(fig3):
    elem_major = [v[-1] for k, v in fig3.series.items()
                  if "angle/*group*" not in k and "angle/group" not in k]
    group_major = [v[-1] for k, v in fig3.series.items()
                   if "angle/*group*" in k or "angle/group" in k]
    assert min(elem_major) < min(group_major)


def test_figure3_shape_collapse_fastest_at_full_node(fig3):
    fastest = fig3.fastest_at(56)
    assert "*element*" in fastest and "*group*" in fastest


def test_figure3_shape_all_schemes_scale(fig3):
    assert fig3.thread_counts == list(PAPER_THREAD_COUNTS)
    for label, values in fig3.series.items():
        assert values[0] > values[-1], f"{label} does not scale"


def test_measured_thread_scaling_study_linear():
    """Run the measured thread-count x engine ensemble and print its series."""
    result = measured_thread_scaling_study(
        measured_base_spec(order=1),
        thread_counts=MEASURED["thread_counts"],
        engines=MEASURED["engines"],
    )
    assert len(result) == len(MEASURED["thread_counts"]) * len(MEASURED["engines"])
    series = measured_scaling_series(result)
    print()
    print(
        format_scaling_series(
            series.thread_counts,
            series.series,
            title=f"Figure 3 companion (measured study): octant-parallel solve seconds, "
            f"{MEASURED['n']}^3 linear elements",
        )
    )
    assert series.thread_counts == sorted(MEASURED["thread_counts"])
    assert set(series.series) == {f"engine={e}" for e in MEASURED["engines"]}
    # Same flux at every (engine, thread count) grid point: the ensemble only
    # moves time.
    assert len({f"{v:.17e}" for v in result.values("mean_flux")}) == 1
