"""Figure 3: thread scaling of the parallel sweep, linear elements.

The figure's measurement (assemble/solve time vs OpenMP threads on a 56-core
Skylake node for six loop-ordering/layout/threading schemes) cannot be
repeated faithfully from CPython, so the series are produced by the node
performance model with the paper's exact problem (16^3 cells, 36 angles per
octant, 64 groups, twist 0.001, 5 inners) and machine (2x Xeon 8176), and the
shape assertions of Section IV-A.1 are checked on the model output:

* the ``angle/element/group`` data layout beats ``angle/group/element`` for
  linear elements,
* collapsing the element and group loops gives the fastest scheme on all 56
  cores, and
* every scheme scales (time decreases) from 1 to 56 threads.

The *measured* companion ensemble is now the registered
``thread-scaling-linear`` benchmark case (``unsnap bench --filter scaling``):
a thread-count x engine study through ``repro.run_study`` with
octant-parallel sweeps, shrinkable via the ``UNSNAP_BENCH_*`` knobs.
"""

import pytest

from repro.analysis.figures import PAPER_THREAD_COUNTS, figure3_series
from repro.analysis.reporting import format_bench_report, format_scaling_series
from repro.bench import BenchWorkload, run_benchmarks
from repro.bench.registry import get_benchmark
from repro.bench.suite import run_case
from repro.config import ProblemSpec
from repro.perfmodel.schemes import paper_schemes
from repro.perfmodel.simulator import SweepPerformanceModel


@pytest.fixture(scope="module")
def fig3():
    return figure3_series()


def test_model_evaluation():
    spec = ProblemSpec.paper_figure3_4(order=1)
    model = SweepPerformanceModel(spec)
    scheme = paper_schemes()[1]
    point = model.sweep_time(scheme, 56)
    assert point.seconds > 0


def test_print_figure3_series(fig3):
    print()
    print(
        format_scaling_series(
            fig3.thread_counts,
            fig3.series,
            title="Figure 3 (reproduced, model): assemble/solve time vs threads, linear elements",
        )
    )
    print(f"fastest scheme at 56 threads: {fig3.fastest_at(56)}")


def test_figure3_shape_element_major_layout_wins(fig3):
    elem_major = [v[-1] for k, v in fig3.series.items()
                  if "angle/*group*" not in k and "angle/group" not in k]
    group_major = [v[-1] for k, v in fig3.series.items()
                   if "angle/*group*" in k or "angle/group" in k]
    assert min(elem_major) < min(group_major)


def test_figure3_shape_collapse_fastest_at_full_node(fig3):
    fastest = fig3.fastest_at(56)
    assert "*element*" in fastest and "*group*" in fastest


def test_figure3_shape_all_schemes_scale(fig3):
    assert fig3.thread_counts == list(PAPER_THREAD_COUNTS)
    for label, values in fig3.series.items():
        assert values[0] > values[-1], f"{label} does not scale"


def test_measured_thread_scaling_case():
    """The registered measured companion: every engine at every thread count."""
    workload = BenchWorkload.from_env(smoke=True).with_(repeats=1, warmup=0)
    case = run_case(get_benchmark("thread-scaling-linear"), workload)
    # Same flux at every (engine, thread count) grid point: the ensemble
    # only moves time.
    fluxes = {f"{s.metrics['mean_flux']:.17e}" for s in case.samples}
    assert len(fluxes) == 1
    threads = {s.metrics["threads"] for s in case.samples}
    assert threads == {1, 2}


def test_print_scaling_report():
    """Run the scaling-tagged cases through the suite runner and print them."""
    workload = BenchWorkload.from_env(smoke=True).with_(repeats=1, warmup=0)
    report = run_benchmarks(["scaling"], workload=workload)
    print()
    print(format_bench_report(report))
    assert {case.name for case in report.cases} >= {
        "thread-scaling-linear", "thread-scaling-cubic", "block-jacobi-ranks"
    }
