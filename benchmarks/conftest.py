"""Shared configuration for the benchmark wrappers.

The measurement bodies live in the registered benchmark cases of
:mod:`repro.bench.cases`; the ``bench_*.py`` files here are thin pytest
wrappers that execute those cases (honouring the ``UNSNAP_BENCH_*``
shrink knobs), print the tables/series the paper reports, and assert the
qualitative shapes.  ``unsnap bench`` is the primary entry point; running
``pytest benchmarks/ -s`` reproduces the same evaluation under pytest.
"""
