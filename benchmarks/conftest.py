"""Shared configuration for the benchmark harness.

Every benchmark prints the table or figure series it reproduces (the same
rows/series the paper reports) in addition to the pytest-benchmark timing
statistics, so running ``pytest benchmarks/ --benchmark-only -s`` regenerates
the full evaluation of the paper on scaled-down problems.
"""

from __future__ import annotations

import pytest

from repro.config import ProblemSpec


@pytest.fixture(scope="session")
def table2_base_spec() -> ProblemSpec:
    """Scaled-down version of the paper's Table II problem.

    Paper: 32^3 cells, 10 angles/octant, 16 groups, 5 inners.  Here: 5^3
    cells, 2 angles/octant, 4 groups, 2 inners -- the same sweep over element
    orders and solvers, small enough to run in seconds under CPython.
    """
    return ProblemSpec(
        nx=5, ny=5, nz=5,
        angles_per_octant=2,
        num_groups=4,
        max_twist=0.001,
        num_inners=2,
        num_outers=1,
    )


@pytest.fixture(scope="session")
def kernel_spec() -> ProblemSpec:
    """Small single-sweep problem used for kernel-level benchmarks."""
    return ProblemSpec(
        nx=4, ny=4, nz=4,
        angles_per_octant=2,
        num_groups=4,
        max_twist=0.001,
        num_inners=1,
        num_outers=1,
    )
