"""Section III-A.1: parallel block Jacobi vs rank count.

The paper's global schedule trades KBA pipeline idle time for a convergence
rate that degrades with the number of Jacobi blocks (MPI ranks).  This
benchmark runs the same problem on growing rank grids with the simulated MPI
substrate, times the multi-rank solves, prints the measured convergence
histories and the halo-exchange traffic, and checks the expected behaviours:

* all rank grids converge to the same solution;
* the iteration error after a fixed number of inners grows with the rank
  count; and
* the KBA pipeline model predicts the idle time the block Jacobi schedule
  avoids.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_scaling_series, format_table
from repro.config import ProblemSpec
from repro.parallel.kba import KBAPipelineModel
from repro.runner import run

SPEC = ProblemSpec(
    nx=8, ny=4, nz=2, order=1, angles_per_octant=1, num_groups=2,
    max_twist=0.001, num_inners=8, num_outers=1,
)
RANK_GRIDS = ((1, 1), (2, 1), (2, 2), (4, 2))


@pytest.fixture(scope="module")
def results():
    return {
        (px, py): run(SPEC.with_(npex=px, npey=py))
        for px, py in RANK_GRIDS
    }


@pytest.mark.parametrize("npex,npey", RANK_GRIDS)
def test_benchmark_block_jacobi_solve(benchmark, npex, npey):
    spec = SPEC.with_(npex=npex, npey=npey)
    result = benchmark.pedantic(run, args=(spec,), rounds=1, iterations=1)
    assert result.num_ranks == npex * npey


def test_print_convergence_histories(results):
    iterations = list(range(1, SPEC.num_inners + 1))
    series = {
        f"{px}x{py} ranks": results[(px, py)].history.inner_errors for px, py in RANK_GRIDS
    }
    print()
    print(
        format_scaling_series(
            iterations, series,
            title="Block-Jacobi convergence: max relative flux change per inner iteration",
            unit="",
        )
    )
    traffic = [
        (f"{px}x{py}", results[(px, py)].messages, results[(px, py)].total_inners)
        for px, py in RANK_GRIDS
    ]
    print(format_table(("rank grid", "halo messages", "inners"), traffic,
                       title="Halo-exchange traffic"))


def test_all_rank_grids_agree_with_single_rank(results):
    reference = run(SPEC.with_(num_inners=40, inner_tolerance=1e-10))
    for (px, py), result in results.items():
        # After only 8 lagged inners the answers differ slightly, but all are
        # within a few tenths of a per cent of the converged reference.
        rel = np.abs(result.scalar_flux - reference.scalar_flux) / np.maximum(
            reference.scalar_flux, 1e-12
        )
        assert rel.max() < 0.05, f"{px}x{py} deviates too far"


def test_convergence_degrades_with_rank_count(results):
    final_errors = [results[g].history.inner_errors[-1] for g in RANK_GRIDS]
    assert final_errors[-1] > final_errors[0]


def test_halo_traffic_grows_with_rank_count(results):
    messages = [results[g].messages for g in RANK_GRIDS]
    assert messages[0] == 0
    assert all(b >= a for a, b in zip(messages, messages[1:]))


def test_kba_pipeline_idle_time_model():
    rows = []
    for px, py in RANK_GRIDS:
        model = KBAPipelineModel(npex=px, npey=py, num_planes=SPEC.nz * 4)
        rows.append((f"{px}x{py}", round(model.parallel_efficiency(), 3),
                     round(model.idle_fraction(), 3)))
    print()
    print(format_table(("rank grid", "KBA efficiency", "KBA idle fraction"), rows,
                       title="KBA pipeline model (the idle time block Jacobi avoids)"))
    assert rows[0][1] == 1.0
    assert rows[-1][2] > rows[0][2]
