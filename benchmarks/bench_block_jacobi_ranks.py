"""Section III-A.1: parallel block Jacobi vs rank count.

The paper's global schedule trades KBA pipeline idle time for a convergence
rate that degrades with the number of Jacobi blocks (MPI ranks).  The timing
body is now the registered ``block-jacobi-ranks`` benchmark case (per-grid
multi-rank solves with telemetry-counted halo traffic); this wrapper runs it,
prints the measured behaviours and checks the expected shapes:

* the iteration error after a fixed number of inners grows with the rank
  count,
* the halo traffic grows with the rank count (and is zero on one rank), and
* the KBA pipeline model predicts the idle time the block Jacobi schedule
  avoids.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.bench import BenchWorkload
from repro.bench.registry import get_benchmark
from repro.bench.suite import run_case
from repro.parallel.kba import KBAPipelineModel


@pytest.fixture(scope="module")
def case_report():
    workload = BenchWorkload.from_env().with_(repeats=1, warmup=0)
    return run_case(get_benchmark("block-jacobi-ranks"), workload)


def test_print_rank_comparison(case_report):
    rows = [
        (
            sample.name,
            round(sample.best, 3),
            sample.metrics["halo_messages"],
            sample.metrics["halo_bytes"],
            f"{sample.metrics['final_inner_error']:.3e}",
        )
        for sample in case_report.samples
    ]
    print()
    print(
        format_table(
            ("rank grid", "solve s", "halo messages", "halo bytes", "final inner error"),
            rows,
            title="Block Jacobi vs rank count (measured, telemetry-counted halo)",
        )
    )
    assert len(rows) >= 3


def test_convergence_degrades_with_rank_count(case_report):
    errors = [s.metrics["final_inner_error"] for s in case_report.samples]
    assert errors[-1] > errors[0]


def test_all_rank_grids_agree_with_single_rank(case_report):
    """Every decomposition converges towards the same solution.

    After a fixed number of lagged inners the iterates differ slightly, but
    each rank grid's mean flux must sit within a few per cent of the 1x1
    solve (the exact multi-rank-vs-single agreement at convergence is
    asserted by ``tests/parallel/test_parallel.py``).
    """
    single = case_report.sample("1x1").metrics["mean_flux"]
    for sample in case_report.samples:
        assert sample.metrics["mean_flux"] == pytest.approx(single, rel=0.05), sample.name


def test_halo_traffic_grows_with_rank_count(case_report):
    messages = [s.metrics["halo_messages"] for s in case_report.samples]
    assert messages[0] == 0
    assert all(b >= a for a, b in zip(messages, messages[1:]))


def test_kba_pipeline_idle_time_model(case_report):
    rows = []
    for sample in case_report.samples:
        px, py = (int(v) for v in sample.name.split("x"))
        model = KBAPipelineModel(npex=px, npey=py, num_planes=8)
        rows.append((sample.name, round(model.parallel_efficiency(), 3),
                     round(model.idle_fraction(), 3)))
    print()
    print(format_table(("rank grid", "KBA efficiency", "KBA idle fraction"), rows,
                       title="KBA pipeline model (the idle time block Jacobi avoids)"))
    assert rows[0][1] == 1.0
    assert rows[-1][2] > rows[0][2]
